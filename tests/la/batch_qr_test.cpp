// Chunk-interleaved batched QR: layout round-trips, parity with the scalar
// unblocked kernel per problem, pad-lane behavior, and the batched
// apply/solve kernels. Sizes deliberately include non-multiples of the SIMD
// width and batch counts that leave partial final chunks.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/batched_qr.hpp"
#include "la/batch_qr.hpp"
#include "la/checks.hpp"
#include "la/kernels.hpp"
#include "la/matrix.hpp"

namespace tqr::la {
namespace {

template <typename T>
std::vector<Matrix<T>> random_batch(index_t m, index_t n, int count,
                                    std::uint64_t seed) {
  std::vector<Matrix<T>> out;
  for (int p = 0; p < count; ++p)
    out.push_back(Matrix<T>::random(m, n, seed + static_cast<std::uint64_t>(p)));
  return out;
}

/// Factors one problem with the scalar reference path (geqrt_unblocked's
/// Householder sweep) and returns the in-place V/R storage plus tau.
template <typename T>
std::pair<Matrix<T>, Matrix<T>> reference_factor(const Matrix<T>& a) {
  Matrix<T> vr = a;
  Matrix<T> t(a.cols(), a.cols());
  geqrt_unblocked<T>(vr.view(), t.view());
  Matrix<T> tau(a.cols(), 1);
  for (index_t k = 0; k < a.cols(); ++k) tau(k, 0) = t(k, k);
  return {std::move(vr), std::move(tau)};
}

TEST(BatchMatrix, LoadExtractRoundTripsEveryLane) {
  constexpr index_t kW = BatchMatrix<double>::kWidth;
  const int count = static_cast<int>(kW) + 3;  // forces a padded final chunk
  BatchMatrix<double> b(5, 3, count);
  EXPECT_EQ(b.chunks(), 2);
  const auto problems = random_batch<double>(5, 3, count, 7);
  for (int p = 0; p < count; ++p)
    b.load(static_cast<index_t>(p), problems[static_cast<std::size_t>(p)]
                                        .view());
  for (int p = 0; p < count; ++p) {
    Matrix<double> back(5, 3);
    b.extract(static_cast<index_t>(p), back.view());
    EXPECT_EQ(relative_error<double>(back.view(),
                                     problems[static_cast<std::size_t>(p)]
                                         .view()),
              0.0);
  }
  // Interleaved addressing: consecutive problems of one chunk are adjacent.
  EXPECT_EQ(&b.at(0, 0, 1) - &b.at(0, 0, 0), 1);
  EXPECT_EQ(&b.at(1, 0, 0) - &b.at(0, 0, 0), static_cast<std::ptrdiff_t>(kW));
}

struct ParityCase {
  int m, n, count;
};

void PrintTo(const ParityCase& c, std::ostream* os) {
  *os << c.m << "x" << c.n << "/b" << c.count;
}

class BatchedParity : public ::testing::TestWithParam<ParityCase> {};

TEST_P(BatchedParity, MatchesScalarKernelPerProblem) {
  const auto c = GetParam();
  const auto problems =
      random_batch<double>(c.m, c.n, c.count,
                           100 + static_cast<std::uint64_t>(c.m));
  const auto f = core::BatchedQr<double>::factor(problems);
  const double tol = verify_tolerance<double>(c.m + c.n);
  for (int p = 0; p < c.count; ++p) {
    const auto [vr, tau] = reference_factor(problems[
        static_cast<std::size_t>(p)]);
    Matrix<double> got(c.m, c.n);
    f.factors().extract(static_cast<index_t>(p), got.view());
    // The two recipes agree to rounding, not bitwise (sqrt vs hypot norms).
    EXPECT_LT(relative_error<double>(got.view(), vr.view()), tol)
        << "problem " << p;
    Matrix<double> got_tau(c.n, 1);
    f.tau().extract(static_cast<index_t>(p), got_tau.view());
    EXPECT_LT(relative_error<double>(got_tau.view(), tau.view()),
              tol)
        << "problem " << p;
    // Independent ground truth: reconstruction residual per problem.
    EXPECT_LT(f.residual(static_cast<index_t>(p),
                         problems[static_cast<std::size_t>(p)]),
              tol)
        << "problem " << p;
  }
}

// Sizes straddle the SIMD width (4/5/7/8/12/16/33/64), tall shapes included;
// batch counts of 1, 3, and 64 cover a lone lane, a partial chunk, and many
// full chunks.
INSTANTIATE_TEST_SUITE_P(
    Sweep, BatchedParity,
    ::testing::Values(ParityCase{4, 4, 3}, ParityCase{5, 5, 3},
                      ParityCase{7, 7, 1}, ParityCase{8, 8, 64},
                      ParityCase{12, 8, 3}, ParityCase{16, 16, 3},
                      ParityCase{33, 33, 3}, ParityCase{64, 64, 3},
                      ParityCase{48, 12, 64}));

TEST(BatchedQr, Fp32ParityWithinFloatTolerance) {
  const auto problems = random_batch<float>(16, 16, 11, 500);
  const auto f = core::BatchedQr<float>::factor(problems);
  const double tol = verify_tolerance<float>(32);
  for (int p = 0; p < 11; ++p) {
    const auto [vr, tau] = reference_factor(problems[
        static_cast<std::size_t>(p)]);
    Matrix<float> got(16, 16);
    f.factors().extract(static_cast<index_t>(p), got.view());
    EXPECT_LT(relative_error<float>(got.view(), vr.view()), tol)
        << "problem " << p;
    EXPECT_LT(f.residual(static_cast<index_t>(p),
                         problems[static_cast<std::size_t>(p)]),
              tol)
        << "problem " << p;
  }
}

TEST(BatchedQr, PadLanesStayIdentityAndRIsUpperTriangular) {
  constexpr index_t kW = BatchMatrix<double>::kWidth;
  const int count = static_cast<int>(kW) - 1;  // one pad lane in the chunk
  const auto problems = random_batch<double>(8, 8, count, 900);
  const auto f = core::BatchedQr<double>::factor(problems);
  // Pad lane (index `count` inside the storage) must be all-zero with
  // tau = 0 — the factorization treats it as an identity problem.
  for (index_t k = 0; k < 8; ++k) {
    EXPECT_EQ(f.tau().at(k, 0, count), 0.0);
    for (index_t i = 0; i < 8; ++i) EXPECT_EQ(f.factors().at(i, k, count), 0.0);
  }
  for (int p = 0; p < count; ++p) {
    const auto r = f.r(static_cast<index_t>(p));
    for (index_t j = 0; j < 8; ++j)
      for (index_t i = j + 1; i < 8; ++i) EXPECT_EQ(r(i, j), 0.0);
  }
}

TEST(BatchedQr, SolveMatchesPerProblemLeastSquares) {
  const int count = 9;
  const auto problems = random_batch<double>(12, 7, count, 1300);
  const auto rhs = random_batch<double>(12, 2, count, 1400);
  const auto f = core::BatchedQr<double>::factor(problems);
  const auto xs = f.solve(rhs);
  ASSERT_EQ(xs.size(), static_cast<std::size_t>(count));
  const double tol = verify_tolerance<double>(12 + 7);
  for (int p = 0; p < count; ++p) {
    const auto& a = problems[static_cast<std::size_t>(p)];
    const auto& x = xs[static_cast<std::size_t>(p)];
    ASSERT_EQ(x.rows(), 7);
    ASSERT_EQ(x.cols(), 2);
    // Least-squares optimality: the residual b - A x is orthogonal to
    // range(A), i.e. A^T (b - A x) ~ 0 relative to ||A^T b||.
    for (index_t col = 0; col < 2; ++col) {
      double gnorm2 = 0, rnorm2 = 0;
      for (index_t j = 0; j < 7; ++j) {
        double atb = 0, atr = 0;
        for (index_t i = 0; i < 12; ++i) {
          double ri = rhs[static_cast<std::size_t>(p)](i, col);
          for (index_t l = 0; l < 7; ++l) ri -= a(i, l) * x(l, col);
          atr += a(i, j) * ri;
          atb += a(i, j) * rhs[static_cast<std::size_t>(p)](i, col);
        }
        gnorm2 += atb * atb;
        rnorm2 += atr * atr;
      }
      EXPECT_LT(std::sqrt(rnorm2), tol * std::sqrt(gnorm2) + tol)
          << "problem " << p << " rhs col " << col;
    }
  }
}

TEST(BatchedQr, ShapeViolationsThrow) {
  EXPECT_THROW(core::BatchedQr<double>::factor({}), InvalidArgument);
  std::vector<Matrix<double>> wide;
  wide.push_back(Matrix<double>::random(4, 6, 1));
  EXPECT_THROW(core::BatchedQr<double>::factor(wide), InvalidArgument);
  std::vector<Matrix<double>> mixed;
  mixed.push_back(Matrix<double>::random(8, 8, 1));
  mixed.push_back(Matrix<double>::random(8, 4, 2));
  EXPECT_THROW(core::BatchedQr<double>::factor(mixed), InvalidArgument);
}

}  // namespace
}  // namespace tqr::la
