#include "la/matrix.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "common/error.hpp"

namespace tqr::la {
namespace {

TEST(CheckedExtent, RejectsNegativeAndOverflowingShapes) {
  // Allocation requests are validated BEFORE the buffer is sized: negative
  // extents and products past index_t (the bound every kernel's index
  // arithmetic assumes) must throw InvalidArgument, not wrap a size_t.
  EXPECT_THROW(checked_extent(-1, 4), InvalidArgument);
  EXPECT_THROW(checked_extent(4, -1), InvalidArgument);
  EXPECT_THROW(checked_extent(200000, 200000), InvalidArgument);  // 4e10
  EXPECT_THROW(Matrix<double>(-3, 2), InvalidArgument);
  EXPECT_THROW(Matrix<double>(200000, 200000), InvalidArgument);
}

TEST(CheckedExtent, AcceptsBoundaryShapes) {
  EXPECT_EQ(checked_extent(0, 0), 0u);
  EXPECT_EQ(checked_extent(0, 5), 0u);
  const index_t kMax = std::numeric_limits<index_t>::max();
  // kMax x 1 sits exactly on the limit; (kMax/2 + 1) x 2 is one past it.
  EXPECT_EQ(checked_extent(kMax, 1), static_cast<std::size_t>(kMax));
  EXPECT_THROW(checked_extent(kMax / 2 + 1, 2), InvalidArgument);
  Matrix<double> empty(0, 0);  // degenerate but legal
  EXPECT_EQ(empty.rows(), 0);
}

TEST(Matrix, ZeroInitialized) {
  Matrix<double> m(3, 4);
  for (index_t j = 0; j < 4; ++j)
    for (index_t i = 0; i < 3; ++i) EXPECT_EQ(m(i, j), 0.0);
}

TEST(Matrix, ElementAccessRoundTrips) {
  Matrix<double> m(4, 4);
  m(1, 2) = 3.5;
  m(3, 0) = -1.0;
  EXPECT_EQ(m(1, 2), 3.5);
  EXPECT_EQ(m(3, 0), -1.0);
}

TEST(Matrix, ColumnMajorLayout) {
  Matrix<double> m(3, 2);
  m(0, 0) = 1;
  m(1, 0) = 2;
  m(2, 0) = 3;
  m(0, 1) = 4;
  EXPECT_EQ(m.data()[0], 1);
  EXPECT_EQ(m.data()[1], 2);
  EXPECT_EQ(m.data()[2], 3);
  EXPECT_EQ(m.data()[3], 4);
}

TEST(Matrix, IdentityHasUnitDiagonal) {
  auto id = Matrix<float>::identity(5);
  for (index_t j = 0; j < 5; ++j)
    for (index_t i = 0; i < 5; ++i)
      EXPECT_EQ(id(i, j), i == j ? 1.0f : 0.0f);
}

TEST(Matrix, RandomIsDeterministicInSeed) {
  auto a = Matrix<double>::random(6, 6, 42);
  auto b = Matrix<double>::random(6, 6, 42);
  auto c = Matrix<double>::random(6, 6, 43);
  for (index_t j = 0; j < 6; ++j)
    for (index_t i = 0; i < 6; ++i) EXPECT_EQ(a(i, j), b(i, j));
  int diff = 0;
  for (index_t j = 0; j < 6; ++j)
    for (index_t i = 0; i < 6; ++i)
      if (a(i, j) != c(i, j)) ++diff;
  EXPECT_GT(diff, 30);
}

TEST(Matrix, RandomEntriesBounded) {
  auto a = Matrix<double>::random(20, 20, 1);
  for (index_t j = 0; j < 20; ++j)
    for (index_t i = 0; i < 20; ++i) {
      EXPECT_GE(a(i, j), -1.0);
      EXPECT_LT(a(i, j), 1.0);
    }
}

TEST(MatrixView, BlockSharesStorage) {
  Matrix<double> m(4, 4);
  auto blk = m.view().block(1, 1, 2, 2);
  blk(0, 0) = 9.0;
  EXPECT_EQ(m(1, 1), 9.0);
  EXPECT_EQ(blk.ld, 4);
}

TEST(MatrixView, NestedBlocks) {
  Matrix<double> m(6, 6);
  auto outer = m.view().block(1, 1, 4, 4);
  auto inner = outer.block(1, 1, 2, 2);
  inner(0, 0) = 5.0;
  EXPECT_EQ(m(2, 2), 5.0);
}

TEST(MatrixView, FillAndIdentity) {
  Matrix<double> m(3, 3);
  m.view().fill(2.0);
  EXPECT_EQ(m(2, 2), 2.0);
  m.view().set_identity();
  EXPECT_EQ(m(0, 0), 1.0);
  EXPECT_EQ(m(1, 0), 0.0);
}

TEST(MatrixView, ColIsSingleColumn) {
  Matrix<double> m(4, 3);
  m(2, 1) = 7.0;
  auto c = m.view().col(1);
  EXPECT_EQ(c.rows, 4);
  EXPECT_EQ(c.cols, 1);
  EXPECT_EQ(c(2, 0), 7.0);
}

TEST(ConstMatrixView, ImplicitFromMutable) {
  Matrix<double> m(2, 2);
  m(0, 1) = 4.0;
  MatrixView<double> mv = m.view();
  ConstMatrixView<double> cv = mv;
  EXPECT_EQ(cv(0, 1), 4.0);
}

TEST(Copy, CopiesAllElements) {
  auto src = Matrix<double>::random(5, 3, 2);
  Matrix<double> dst(5, 3);
  copy<double>(src.view(), dst.view());
  for (index_t j = 0; j < 3; ++j)
    for (index_t i = 0; i < 5; ++i) EXPECT_EQ(dst(i, j), src(i, j));
}

TEST(Copy, ShapeMismatchThrows) {
  Matrix<double> a(2, 2), b(3, 2);
  EXPECT_THROW(copy<double>(a.view(), b.view()), InvalidArgument);
}

TEST(Matrix, OwningStorageIs64ByteAligned) {
  static_assert(kMatrixAlignment >= 64,
                "SIMD loads assume at least cache-line alignment");
  // Odd shapes included: alignment is a property of the allocation, not of
  // the dimensions.
  for (index_t r : {1, 7, 16, 33, 128})
    for (index_t c : {1, 5, 64}) {
      Matrix<double> m(r, c);
      EXPECT_TRUE(is_matrix_aligned(m.data())) << r << "x" << c;
      Matrix<float> f(r, c);
      EXPECT_TRUE(is_matrix_aligned(f.data()));
    }
}

}  // namespace
}  // namespace tqr::la
