// Single-precision coverage sweep: the paper evaluates in float, so every
// factorization path must hold its backward-error bounds at float epsilon,
// not just double.
#include <gtest/gtest.h>

#include "core/tiled_cholesky.hpp"
#include "core/tiled_qr.hpp"
#include "la/blocked_qr.hpp"
#include "la/checks.hpp"
#include "la/cholesky.hpp"
#include "la/generators.hpp"
#include "la/reference_qr.hpp"

namespace tqr::la {
namespace {

Matrix<float> random_f(index_t m, index_t n, std::uint64_t seed) {
  return Matrix<float>::random(m, n, seed);
}

struct FloatCase {
  int n;
  int b;
  dag::Elimination elim;
};

void PrintTo(const FloatCase& c, std::ostream* os) {
  *os << c.n << "/b" << c.b << "/" << dag::elimination_name(c.elim);
}

class FloatTiledQr : public ::testing::TestWithParam<FloatCase> {};

TEST_P(FloatTiledQr, BackwardStableAtFloatEpsilon) {
  const FloatCase c = GetParam();
  auto a = random_f(c.n, c.n, 4000 + c.n + c.b);
  typename core::TiledQrFactorization<float>::Options opts;
  opts.elim = c.elim;
  auto f = core::TiledQrFactorization<float>::factor(a, c.b, opts);
  auto q = f.form_q();
  EXPECT_LT(orthogonality_residual<float>(q.view()),
            residual_tolerance<float>(c.n));
  auto r = f.r();
  Matrix<float> r_full(c.n, c.n);
  for (index_t j = 0; j < c.n; ++j)
    for (index_t i = 0; i <= j; ++i) r_full(i, j) = r(i, j);
  EXPECT_LT(reconstruction_residual<float>(a.view(), q.view(),
                                           r_full.view()),
            residual_tolerance<float>(c.n));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FloatTiledQr,
    ::testing::Values(FloatCase{16, 4, dag::Elimination::kTs},
                      FloatCase{32, 8, dag::Elimination::kTt},
                      FloatCase{32, 8, dag::Elimination::kTtFlat},
                      FloatCase{48, 16, dag::Elimination::kTt},
                      FloatCase{64, 16, dag::Elimination::kTs}));

TEST(FloatPaths, ReferenceQrFloat) {
  auto a = random_f(32, 20, 1);
  ReferenceQr<float> qr(a);
  auto q = qr.q();
  EXPECT_LT(orthogonality_residual<float>(q.view()),
            residual_tolerance<float>(32));
}

TEST(FloatPaths, BlockedQrFloat) {
  auto a = random_f(40, 24, 2);
  BlockedQr<float> qr(a, 8);
  auto q = qr.q();
  EXPECT_LT(orthogonality_residual<float>(q.view()),
            residual_tolerance<float>(40));
}

TEST(FloatPaths, CholeskyQr2Float) {
  const index_t m = 64, n = 16;
  auto a = random_f(m, n, 3);
  auto r = cholesky_qr2<float>(a);
  Matrix<float> gram(n, n);
  gemm<float>(Trans::kTrans, Trans::kNoTrans, 1.0f, r.q.view(), r.q.view(),
              0.0f, gram.view());
  for (index_t i = 0; i < n; ++i) gram(i, i) -= 1.0f;
  EXPECT_LT(norm_frobenius<float>(gram.view()),
            residual_tolerance<float>(m));
}

TEST(FloatPaths, SolveAccuracyScalesWithEpsilon) {
  // The float solve error should sit near float epsilon * kappa, far above
  // the double solve error for the same system — a sanity check that both
  // instantiations genuinely run in their own precision.
  const index_t n = 32, b = 8;
  auto ad = Matrix<double>::random(n, n, 4);
  for (index_t i = 0; i < n; ++i) ad(i, i) += 4.0;
  Matrix<float> af(n, n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i) af(i, j) = static_cast<float>(ad(i, j));
  auto xd_true = Matrix<double>::random(n, 1, 5);
  Matrix<double> bd(n, 1);
  gemm<double>(Trans::kNoTrans, Trans::kNoTrans, 1.0, ad.view(),
               xd_true.view(), 0.0, bd.view());
  Matrix<float> bf(n, 1);
  for (index_t i = 0; i < n; ++i) bf(i, 0) = static_cast<float>(bd(i, 0));

  auto fd = core::TiledQrFactorization<double>::factor(ad, b);
  auto ff = core::TiledQrFactorization<float>::factor(af, b);
  auto xd = fd.solve(bd);
  auto xf = ff.solve(bf);
  double err_d = 0, err_f = 0;
  for (index_t i = 0; i < n; ++i) {
    err_d = std::max(err_d, std::abs(xd(i, 0) - xd_true(i, 0)));
    err_f = std::max(err_f,
                     std::abs(static_cast<double>(xf(i, 0)) - xd_true(i, 0)));
  }
  EXPECT_LT(err_d, 1e-12);
  EXPECT_GT(err_f, err_d * 100);  // float genuinely float
  EXPECT_LT(err_f, 1e-3);        // but still accurate at its own scale
}

TEST(FloatPaths, TiledCholeskyFloatSolve) {
  const index_t n = 32, b = 8;
  auto bd = Matrix<float>::random(n, n, 6);
  Matrix<float> a(n, n);
  gemm<float>(Trans::kNoTrans, Trans::kTrans, 1.0f, bd.view(), bd.view(),
              0.0f, a.view());
  for (index_t i = 0; i < n; ++i) a(i, i) += static_cast<float>(n);
  auto x_true = Matrix<float>::random(n, 1, 7);
  Matrix<float> rhs(n, 1);
  gemm<float>(Trans::kNoTrans, Trans::kNoTrans, 1.0f, a.view(),
              x_true.view(), 0.0f, rhs.view());
  auto f = core::TiledCholesky<float>::factor(a, b);
  auto x = f.solve(rhs);
  for (index_t i = 0; i < n; ++i)
    EXPECT_NEAR(x(i, 0), x_true(i, 0), 5e-3f);
}

TEST(FloatPaths, FloatRecursiveFactorHoldsBoundAcrossInnerBlocks) {
  // The recursive kernels must hold the float backward-error bound at every
  // leaf width, including through the full tiled factorization.
  const index_t n = 96, b = 48;
  auto a = random_f(n, n, 4300);
  for (index_t ib : {index_t{1}, index_t{4}, index_t{24}, index_t{48}}) {
    typename core::TiledQrFactorization<float>::Options opts;
    opts.inner_block = ib;
    auto f = core::TiledQrFactorization<float>::factor(a, b, opts);
    auto q = f.form_q();
    EXPECT_LT(orthogonality_residual<float>(q.view()),
              residual_tolerance<float>(n))
        << "ib=" << ib;
    auto r = f.r();
    Matrix<float> r_full(n, n);
    for (index_t j = 0; j < n; ++j)
      for (index_t i = 0; i <= j; ++i) r_full(i, j) = r(i, j);
    EXPECT_LT(
        reconstruction_residual<float>(a.view(), q.view(), r_full.view()),
        residual_tolerance<float>(n))
        << "ib=" << ib;
  }
}

TEST(FloatPaths, MixedSolveReachesDoubleAccuracy) {
  // fp32 factor + fp64 refinement must land at fp64-level accuracy on a
  // well-conditioned system — the whole point of the mixed mode.
  const index_t n = 64, b = 16;
  auto a = Matrix<double>::random(n, n, 4400);
  for (index_t i = 0; i < n; ++i) a(i, i) += 4.0;
  auto x_true = Matrix<double>::random(n, 2, 4401);
  Matrix<double> rhs(n, 2);
  gemm<double>(Trans::kNoTrans, Trans::kNoTrans, 1.0, a.view(),
               x_true.view(), 0.0, rhs.view());

  const auto mixed = core::qr_solve_mixed(a, rhs, b);
  EXPECT_TRUE(mixed.converged);
  EXPECT_LE(mixed.residual, verify_tolerance<double>(n));
  // Refinement must actually have run (a raw fp32 solve cannot hit fp64
  // tolerance) but converge quickly on a benign system.
  EXPECT_GE(mixed.iterations, 1);
  EXPECT_LE(mixed.iterations, 4);
  double err = 0;
  for (index_t j = 0; j < 2; ++j)
    for (index_t i = 0; i < n; ++i)
      err = std::max(err, std::abs(mixed.x(i, j) - x_true(i, j)));
  EXPECT_LT(err, 1e-10);

  // A plain fp32 solve of the same system is orders of magnitude worse —
  // the refinement is what buys the accuracy.
  Matrix<float> af(n, n), bf(n, 2);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i) af(i, j) = static_cast<float>(a(i, j));
  for (index_t j = 0; j < 2; ++j)
    for (index_t i = 0; i < n; ++i) bf(i, j) = static_cast<float>(rhs(i, j));
  auto xf = core::qr_solve<float>(af, bf, b);
  double err_f = 0;
  for (index_t j = 0; j < 2; ++j)
    for (index_t i = 0; i < n; ++i)
      err_f = std::max(err_f, std::abs(static_cast<double>(xf(i, j)) -
                                       x_true(i, j)));
  EXPECT_GT(err_f, err * 100);
}

TEST(FloatPaths, MixedSolveReportsNonConvergenceWhenIllConditioned) {
  // kappa near 1/eps32: fp32 factors cannot drive the refinement, and the
  // result must say so instead of silently returning a bad x.
  const index_t n = 32, b = 8;
  // Genuine spectral conditioning (not column grading, which Householder QR
  // absorbs): kappa_2 = 1e10, past 1/eps32 ~ 1e7 but benign for double.
  auto a = random_with_condition<double>(n, 1e10, 4500);
  auto rhs = Matrix<double>::random(n, 1, 4501);
  const auto mixed = core::qr_solve_mixed(a, rhs, b, dag::Elimination::kTt,
                                          /*max_iterations=*/3);
  EXPECT_FALSE(mixed.converged);
  EXPECT_GT(mixed.residual, 0.0);
}

}  // namespace
}  // namespace tqr::la
