// Single-precision coverage sweep: the paper evaluates in float, so every
// factorization path must hold its backward-error bounds at float epsilon,
// not just double.
#include <gtest/gtest.h>

#include "core/tiled_cholesky.hpp"
#include "core/tiled_qr.hpp"
#include "la/blocked_qr.hpp"
#include "la/checks.hpp"
#include "la/cholesky.hpp"
#include "la/reference_qr.hpp"

namespace tqr::la {
namespace {

Matrix<float> random_f(index_t m, index_t n, std::uint64_t seed) {
  return Matrix<float>::random(m, n, seed);
}

struct FloatCase {
  int n;
  int b;
  dag::Elimination elim;
};

void PrintTo(const FloatCase& c, std::ostream* os) {
  *os << c.n << "/b" << c.b << "/" << dag::elimination_name(c.elim);
}

class FloatTiledQr : public ::testing::TestWithParam<FloatCase> {};

TEST_P(FloatTiledQr, BackwardStableAtFloatEpsilon) {
  const FloatCase c = GetParam();
  auto a = random_f(c.n, c.n, 4000 + c.n + c.b);
  typename core::TiledQrFactorization<float>::Options opts;
  opts.elim = c.elim;
  auto f = core::TiledQrFactorization<float>::factor(a, c.b, opts);
  auto q = f.form_q();
  EXPECT_LT(orthogonality_residual<float>(q.view()),
            residual_tolerance<float>(c.n));
  auto r = f.r();
  Matrix<float> r_full(c.n, c.n);
  for (index_t j = 0; j < c.n; ++j)
    for (index_t i = 0; i <= j; ++i) r_full(i, j) = r(i, j);
  EXPECT_LT(reconstruction_residual<float>(a.view(), q.view(),
                                           r_full.view()),
            residual_tolerance<float>(c.n));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FloatTiledQr,
    ::testing::Values(FloatCase{16, 4, dag::Elimination::kTs},
                      FloatCase{32, 8, dag::Elimination::kTt},
                      FloatCase{32, 8, dag::Elimination::kTtFlat},
                      FloatCase{48, 16, dag::Elimination::kTt},
                      FloatCase{64, 16, dag::Elimination::kTs}));

TEST(FloatPaths, ReferenceQrFloat) {
  auto a = random_f(32, 20, 1);
  ReferenceQr<float> qr(a);
  auto q = qr.q();
  EXPECT_LT(orthogonality_residual<float>(q.view()),
            residual_tolerance<float>(32));
}

TEST(FloatPaths, BlockedQrFloat) {
  auto a = random_f(40, 24, 2);
  BlockedQr<float> qr(a, 8);
  auto q = qr.q();
  EXPECT_LT(orthogonality_residual<float>(q.view()),
            residual_tolerance<float>(40));
}

TEST(FloatPaths, CholeskyQr2Float) {
  const index_t m = 64, n = 16;
  auto a = random_f(m, n, 3);
  auto r = cholesky_qr2<float>(a);
  Matrix<float> gram(n, n);
  gemm<float>(Trans::kTrans, Trans::kNoTrans, 1.0f, r.q.view(), r.q.view(),
              0.0f, gram.view());
  for (index_t i = 0; i < n; ++i) gram(i, i) -= 1.0f;
  EXPECT_LT(norm_frobenius<float>(gram.view()),
            residual_tolerance<float>(m));
}

TEST(FloatPaths, SolveAccuracyScalesWithEpsilon) {
  // The float solve error should sit near float epsilon * kappa, far above
  // the double solve error for the same system — a sanity check that both
  // instantiations genuinely run in their own precision.
  const index_t n = 32, b = 8;
  auto ad = Matrix<double>::random(n, n, 4);
  for (index_t i = 0; i < n; ++i) ad(i, i) += 4.0;
  Matrix<float> af(n, n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i) af(i, j) = static_cast<float>(ad(i, j));
  auto xd_true = Matrix<double>::random(n, 1, 5);
  Matrix<double> bd(n, 1);
  gemm<double>(Trans::kNoTrans, Trans::kNoTrans, 1.0, ad.view(),
               xd_true.view(), 0.0, bd.view());
  Matrix<float> bf(n, 1);
  for (index_t i = 0; i < n; ++i) bf(i, 0) = static_cast<float>(bd(i, 0));

  auto fd = core::TiledQrFactorization<double>::factor(ad, b);
  auto ff = core::TiledQrFactorization<float>::factor(af, b);
  auto xd = fd.solve(bd);
  auto xf = ff.solve(bf);
  double err_d = 0, err_f = 0;
  for (index_t i = 0; i < n; ++i) {
    err_d = std::max(err_d, std::abs(xd(i, 0) - xd_true(i, 0)));
    err_f = std::max(err_f,
                     std::abs(static_cast<double>(xf(i, 0)) - xd_true(i, 0)));
  }
  EXPECT_LT(err_d, 1e-12);
  EXPECT_GT(err_f, err_d * 100);  // float genuinely float
  EXPECT_LT(err_f, 1e-3);        // but still accurate at its own scale
}

TEST(FloatPaths, TiledCholeskyFloatSolve) {
  const index_t n = 32, b = 8;
  auto bd = Matrix<float>::random(n, n, 6);
  Matrix<float> a(n, n);
  gemm<float>(Trans::kNoTrans, Trans::kTrans, 1.0f, bd.view(), bd.view(),
              0.0f, a.view());
  for (index_t i = 0; i < n; ++i) a(i, i) += static_cast<float>(n);
  auto x_true = Matrix<float>::random(n, 1, 7);
  Matrix<float> rhs(n, 1);
  gemm<float>(Trans::kNoTrans, Trans::kNoTrans, 1.0f, a.view(),
              x_true.view(), 0.0f, rhs.view());
  auto f = core::TiledCholesky<float>::factor(a, b);
  auto x = f.solve(rhs);
  for (index_t i = 0; i < n; ++i)
    EXPECT_NEAR(x(i, 0), x_true(i, 0), 5e-3f);
}

}  // namespace
}  // namespace tqr::la
