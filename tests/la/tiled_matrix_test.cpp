#include "la/tiled_matrix.hpp"

#include <gtest/gtest.h>

namespace tqr::la {
namespace {

TEST(TiledMatrix, GeometryAccessors) {
  TiledMatrix<double> t(12, 8, 4);
  EXPECT_EQ(t.rows(), 12);
  EXPECT_EQ(t.cols(), 8);
  EXPECT_EQ(t.tile_size(), 4);
  EXPECT_EQ(t.tile_rows(), 3);
  EXPECT_EQ(t.tile_cols(), 2);
  EXPECT_EQ(t.tile_bytes(), 4u * 4u * sizeof(double));
}

TEST(TiledMatrix, NonDivisibleSizeRejected) {
  EXPECT_THROW(TiledMatrix<double>(10, 8, 4), InvalidArgument);
  EXPECT_THROW(TiledMatrix<double>(8, 10, 4), InvalidArgument);
}

TEST(TiledMatrix, DenseRoundTrip) {
  auto dense = Matrix<double>::random(12, 12, 17);
  auto tiled = TiledMatrix<double>::from_dense(dense, 4);
  auto back = tiled.to_dense();
  for (index_t j = 0; j < 12; ++j)
    for (index_t i = 0; i < 12; ++i) EXPECT_EQ(back(i, j), dense(i, j));
}

TEST(TiledMatrix, AtMatchesDense) {
  auto dense = Matrix<double>::random(8, 8, 18);
  auto tiled = TiledMatrix<double>::from_dense(dense, 4);
  for (index_t j = 0; j < 8; ++j)
    for (index_t i = 0; i < 8; ++i) EXPECT_EQ(tiled.at(i, j), dense(i, j));
}

TEST(TiledMatrix, TilesAreContiguousColumnMajor) {
  TiledMatrix<double> t(8, 8, 4);
  auto tile = t.tile(1, 1);
  tile(0, 0) = 1.0;
  tile(3, 3) = 2.0;
  const double* base = t.tile_data(1, 1);
  EXPECT_EQ(base[0], 1.0);
  EXPECT_EQ(base[15], 2.0);
  EXPECT_EQ(tile.ld, 4);
}

TEST(TiledMatrix, TileViewWritesVisibleThroughAt) {
  TiledMatrix<double> t(8, 8, 4);
  t.tile(1, 0)(2, 3) = 5.5;
  EXPECT_EQ(t.at(4 + 2, 3), 5.5);
}

TEST(PadToTiles, AlreadyAlignedUnchanged) {
  auto a = Matrix<double>::random(8, 8, 19);
  auto p = pad_to_tiles<double>(a.view(), 4);
  EXPECT_EQ(p.rows(), 8);
  EXPECT_EQ(p.cols(), 8);
  for (index_t j = 0; j < 8; ++j)
    for (index_t i = 0; i < 8; ++i) EXPECT_EQ(p(i, j), a(i, j));
}

TEST(PadToTiles, PadsUpAndEmbedsIdentity) {
  auto a = Matrix<double>::random(6, 5, 20);
  auto p = pad_to_tiles<double>(a.view(), 4);
  EXPECT_EQ(p.rows(), 8);
  EXPECT_EQ(p.cols(), 8);
  // Original block preserved.
  for (index_t j = 0; j < 5; ++j)
    for (index_t i = 0; i < 6; ++i) EXPECT_EQ(p(i, j), a(i, j));
  // Identity diagonal on the pad.
  EXPECT_EQ(p(6, 5), 1.0);
  EXPECT_EQ(p(7, 6), 1.0);
  // Rest of pad zero.
  EXPECT_EQ(p(0, 7), 0.0);
  EXPECT_EQ(p(7, 0), 0.0);
}

}  // namespace
}  // namespace tqr::la
