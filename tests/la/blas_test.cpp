#include "la/blas.hpp"

#include <gtest/gtest.h>

#include "la/matrix.hpp"

namespace tqr::la {
namespace {

Matrix<double> naive_mm(const Matrix<double>& a, const Matrix<double>& b,
                        bool ta, bool tb) {
  const index_t m = ta ? a.cols() : a.rows();
  const index_t k = ta ? a.rows() : a.cols();
  const index_t n = tb ? b.rows() : b.cols();
  Matrix<double> c(m, n);
  for (index_t i = 0; i < m; ++i)
    for (index_t j = 0; j < n; ++j) {
      double acc = 0;
      for (index_t p = 0; p < k; ++p) {
        const double av = ta ? a(p, i) : a(i, p);
        const double bv = tb ? b(j, p) : b(p, j);
        acc += av * bv;
      }
      c(i, j) = acc;
    }
  return c;
}

class GemmVariants : public ::testing::TestWithParam<std::pair<Trans, Trans>> {
};

TEST_P(GemmVariants, MatchesNaiveReference) {
  const auto [ta, tb] = GetParam();
  const index_t m = 7, k = 5, n = 6;
  auto a = (ta == Trans::kNoTrans) ? Matrix<double>::random(m, k, 1)
                                   : Matrix<double>::random(k, m, 1);
  auto b = (tb == Trans::kNoTrans) ? Matrix<double>::random(k, n, 2)
                                   : Matrix<double>::random(n, k, 2);
  Matrix<double> c(m, n);
  gemm<double>(ta, tb, 1.0, a.view(), b.view(), 0.0, c.view());
  auto ref = naive_mm(a, b, ta == Trans::kTrans, tb == Trans::kTrans);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < m; ++i) EXPECT_NEAR(c(i, j), ref(i, j), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    AllTransCombos, GemmVariants,
    ::testing::Values(std::pair{Trans::kNoTrans, Trans::kNoTrans},
                      std::pair{Trans::kTrans, Trans::kNoTrans},
                      std::pair{Trans::kNoTrans, Trans::kTrans},
                      std::pair{Trans::kTrans, Trans::kTrans}));

TEST(Gemm, AlphaBetaScaling) {
  auto a = Matrix<double>::random(4, 4, 3);
  auto b = Matrix<double>::random(4, 4, 4);
  Matrix<double> c(4, 4);
  c.view().fill(1.0);
  gemm<double>(Trans::kNoTrans, Trans::kNoTrans, 2.0, a.view(), b.view(), 3.0,
               c.view());
  auto ref = naive_mm(a, b, false, false);
  for (index_t j = 0; j < 4; ++j)
    for (index_t i = 0; i < 4; ++i)
      EXPECT_NEAR(c(i, j), 2.0 * ref(i, j) + 3.0, 1e-12);
}

TEST(Gemm, BetaZeroOverwritesGarbage) {
  auto a = Matrix<double>::random(3, 3, 5);
  auto b = Matrix<double>::random(3, 3, 6);
  Matrix<double> c(3, 3);
  c.view().fill(std::numeric_limits<double>::quiet_NaN());
  gemm<double>(Trans::kNoTrans, Trans::kNoTrans, 1.0, a.view(), b.view(), 0.0,
               c.view());
  auto ref = naive_mm(a, b, false, false);
  for (index_t j = 0; j < 3; ++j)
    for (index_t i = 0; i < 3; ++i) EXPECT_NEAR(c(i, j), ref(i, j), 1e-12);
}

TEST(Gemm, InnerDimensionMismatchThrows) {
  Matrix<double> a(3, 4), b(5, 2), c(3, 2);
  EXPECT_THROW(gemm<double>(Trans::kNoTrans, Trans::kNoTrans, 1.0, a.view(),
                            b.view(), 0.0, c.view()),
               InvalidArgument);
}

// trmm against explicit triangular multiply.
class TrmmVariants
    : public ::testing::TestWithParam<std::tuple<UpLo, Trans, Diag>> {};

TEST_P(TrmmVariants, MatchesExplicitTriangularProduct) {
  const auto [uplo, trans, diag] = GetParam();
  const index_t m = 6, n = 4;
  auto a_full = Matrix<double>::random(m, m, 11);
  // Build the explicit triangular operator.
  Matrix<double> tri(m, m);
  for (index_t j = 0; j < m; ++j)
    for (index_t i = 0; i < m; ++i) {
      const bool keep = (uplo == UpLo::kUpper) ? (i <= j) : (i >= j);
      tri(i, j) = keep ? a_full(i, j) : 0.0;
      if (i == j && diag == Diag::kUnit) tri(i, j) = 1.0;
    }
  auto b = Matrix<double>::random(m, n, 12);
  Matrix<double> expect(m, n);
  gemm<double>(trans, Trans::kNoTrans, 1.0, tri.view(), b.view(), 0.0,
               expect.view());

  Matrix<double> got = b;
  trmm_left<double>(uplo, trans, diag, a_full.view(), got.view());
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < m; ++i)
      EXPECT_NEAR(got(i, j), expect(i, j), 1e-12)
          << "at (" << i << "," << j << ")";
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, TrmmVariants,
    ::testing::Combine(::testing::Values(UpLo::kUpper, UpLo::kLower),
                       ::testing::Values(Trans::kNoTrans, Trans::kTrans),
                       ::testing::Values(Diag::kUnit, Diag::kNonUnit)));

class TrsmVariants
    : public ::testing::TestWithParam<std::tuple<UpLo, Trans, Diag>> {};

TEST_P(TrsmVariants, SolveThenMultiplyRoundTrips) {
  const auto [uplo, trans, diag] = TrsmVariants::GetParam();
  const index_t m = 6, n = 3;
  auto a = Matrix<double>::random(m, m, 21);
  for (index_t i = 0; i < m; ++i) a(i, i) += 4.0;  // well-conditioned
  auto b = Matrix<double>::random(m, n, 22);
  Matrix<double> x = b;
  trsm_left<double>(uplo, trans, diag, a.view(), x.view());
  // Multiply back: op(tri(A)) * x should equal b.
  Matrix<double> back = x;
  trmm_left<double>(uplo, trans, diag, a.view(), back.view());
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < m; ++i) EXPECT_NEAR(back(i, j), b(i, j), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, TrsmVariants,
    ::testing::Combine(::testing::Values(UpLo::kUpper, UpLo::kLower),
                       ::testing::Values(Trans::kNoTrans, Trans::kTrans),
                       ::testing::Values(Diag::kUnit, Diag::kNonUnit)));

TEST(VectorOps, DotAndAxpy) {
  Matrix<double> x(4, 1), y(4, 1);
  for (index_t i = 0; i < 4; ++i) {
    x(i, 0) = i + 1;  // 1 2 3 4
    y(i, 0) = 1.0;
  }
  EXPECT_DOUBLE_EQ(dot<double>(x.view(), y.view()), 10.0);
  axpy<double>(2.0, x.view(), y.view());
  EXPECT_DOUBLE_EQ(y(3, 0), 9.0);
}

TEST(VectorOps, Nrm2MatchesHypot) {
  Matrix<double> x(3, 1);
  x(0, 0) = 3;
  x(1, 0) = 4;
  x(2, 0) = 12;
  EXPECT_NEAR(nrm2<double>(x.view()), 13.0, 1e-12);
}

TEST(VectorOps, Nrm2AvoidsOverflow) {
  Matrix<double> x(2, 1);
  x(0, 0) = 1e200;
  x(1, 0) = 1e200;
  EXPECT_NEAR(nrm2<double>(x.view()), std::sqrt(2.0) * 1e200, 1e188);
}

TEST(Norms, FrobeniusOfIdentity) {
  auto id = Matrix<double>::identity(9);
  EXPECT_NEAR(norm_frobenius<double>(id.view()), 3.0, 1e-12);
}

TEST(Norms, MaxAbs) {
  Matrix<double> m(2, 2);
  m(0, 0) = -5;
  m(1, 1) = 3;
  EXPECT_DOUBLE_EQ(norm_max<double>(m.view()), 5.0);
}

}  // namespace
}  // namespace tqr::la

namespace tqr::la {
namespace {

class TrsmRightVariants
    : public ::testing::TestWithParam<std::tuple<UpLo, Trans, Diag>> {};

TEST_P(TrsmRightVariants, SolveThenMultiplyRoundTrips) {
  const auto [uplo, trans, diag] = GetParam();
  const index_t m = 5, n = 6;
  auto a = Matrix<double>::random(n, n, 31);
  for (index_t i = 0; i < n; ++i) a(i, i) += 4.0;
  auto b = Matrix<double>::random(m, n, 32);
  Matrix<double> x = b;
  trsm_right<double>(uplo, trans, diag, a.view(), x.view());
  // Multiply back: X * op(tri(A)) must equal B. Build op(tri(A)) densely.
  Matrix<double> tri(n, n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i) {
      const bool keep = (uplo == UpLo::kUpper) ? (i <= j) : (i >= j);
      tri(i, j) = keep ? a(i, j) : 0.0;
      if (i == j && diag == Diag::kUnit) tri(i, j) = 1.0;
    }
  Matrix<double> back(m, n);
  gemm<double>(Trans::kNoTrans, trans, 1.0, x.view(), tri.view(), 0.0,
               back.view());
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < m; ++i) EXPECT_NEAR(back(i, j), b(i, j), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, TrsmRightVariants,
    ::testing::Combine(::testing::Values(UpLo::kUpper, UpLo::kLower),
                       ::testing::Values(Trans::kNoTrans, Trans::kTrans),
                       ::testing::Values(Diag::kUnit, Diag::kNonUnit)));

TEST(SyrkLower, MatchesGemmOnLowerTriangle) {
  const index_t n = 6, k = 4;
  auto a = Matrix<double>::random(n, k, 33);
  Matrix<double> c(n, n);
  c.view().fill(2.0);
  Matrix<double> expect = c;
  syrk_lower<double>(Trans::kNoTrans, 1.5, a.view(), 0.5, c.view());
  Matrix<double> aat(n, n);
  gemm<double>(Trans::kNoTrans, Trans::kTrans, 1.0, a.view(), a.view(), 0.0,
               aat.view());
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i) {
      if (i >= j)
        EXPECT_NEAR(c(i, j), 1.5 * aat(i, j) + 0.5 * 2.0, 1e-12);
      else
        EXPECT_EQ(c(i, j), 2.0);  // strictly-upper untouched
    }
}

TEST(SyrkLower, TransposedInput) {
  const index_t n = 5, k = 7;
  auto a = Matrix<double>::random(k, n, 34);
  Matrix<double> c(n, n);
  syrk_lower<double>(Trans::kTrans, 1.0, a.view(), 0.0, c.view());
  Matrix<double> ata(n, n);
  gemm<double>(Trans::kTrans, Trans::kNoTrans, 1.0, a.view(), a.view(), 0.0,
               ata.view());
  for (index_t j = 0; j < n; ++j)
    for (index_t i = j; i < n; ++i) EXPECT_NEAR(c(i, j), ata(i, j), 1e-12);
}

TEST(SyrkLower, ShapeMismatchRejected) {
  Matrix<double> a(4, 3), c(5, 5);
  EXPECT_THROW(
      syrk_lower<double>(Trans::kNoTrans, 1.0, a.view(), 0.0, c.view()),
      InvalidArgument);
}

}  // namespace
}  // namespace tqr::la
