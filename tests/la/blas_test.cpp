#include "la/blas.hpp"

#include <gtest/gtest.h>

#include "la/matrix.hpp"

namespace tqr::la {
namespace {

Matrix<double> naive_mm(const Matrix<double>& a, const Matrix<double>& b,
                        bool ta, bool tb) {
  const index_t m = ta ? a.cols() : a.rows();
  const index_t k = ta ? a.rows() : a.cols();
  const index_t n = tb ? b.rows() : b.cols();
  Matrix<double> c(m, n);
  for (index_t i = 0; i < m; ++i)
    for (index_t j = 0; j < n; ++j) {
      double acc = 0;
      for (index_t p = 0; p < k; ++p) {
        const double av = ta ? a(p, i) : a(i, p);
        const double bv = tb ? b(j, p) : b(p, j);
        acc += av * bv;
      }
      c(i, j) = acc;
    }
  return c;
}

class GemmVariants : public ::testing::TestWithParam<std::pair<Trans, Trans>> {
};

TEST_P(GemmVariants, MatchesNaiveReference) {
  const auto [ta, tb] = GetParam();
  const index_t m = 7, k = 5, n = 6;
  auto a = (ta == Trans::kNoTrans) ? Matrix<double>::random(m, k, 1)
                                   : Matrix<double>::random(k, m, 1);
  auto b = (tb == Trans::kNoTrans) ? Matrix<double>::random(k, n, 2)
                                   : Matrix<double>::random(n, k, 2);
  Matrix<double> c(m, n);
  gemm<double>(ta, tb, 1.0, a.view(), b.view(), 0.0, c.view());
  auto ref = naive_mm(a, b, ta == Trans::kTrans, tb == Trans::kTrans);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < m; ++i) EXPECT_NEAR(c(i, j), ref(i, j), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    AllTransCombos, GemmVariants,
    ::testing::Values(std::pair{Trans::kNoTrans, Trans::kNoTrans},
                      std::pair{Trans::kTrans, Trans::kNoTrans},
                      std::pair{Trans::kNoTrans, Trans::kTrans},
                      std::pair{Trans::kTrans, Trans::kTrans}));

TEST(Gemm, AlphaBetaScaling) {
  auto a = Matrix<double>::random(4, 4, 3);
  auto b = Matrix<double>::random(4, 4, 4);
  Matrix<double> c(4, 4);
  c.view().fill(1.0);
  gemm<double>(Trans::kNoTrans, Trans::kNoTrans, 2.0, a.view(), b.view(), 3.0,
               c.view());
  auto ref = naive_mm(a, b, false, false);
  for (index_t j = 0; j < 4; ++j)
    for (index_t i = 0; i < 4; ++i)
      EXPECT_NEAR(c(i, j), 2.0 * ref(i, j) + 3.0, 1e-12);
}

TEST(Gemm, BetaZeroOverwritesGarbage) {
  auto a = Matrix<double>::random(3, 3, 5);
  auto b = Matrix<double>::random(3, 3, 6);
  Matrix<double> c(3, 3);
  c.view().fill(std::numeric_limits<double>::quiet_NaN());
  gemm<double>(Trans::kNoTrans, Trans::kNoTrans, 1.0, a.view(), b.view(), 0.0,
               c.view());
  auto ref = naive_mm(a, b, false, false);
  for (index_t j = 0; j < 3; ++j)
    for (index_t i = 0; i < 3; ++i) EXPECT_NEAR(c(i, j), ref(i, j), 1e-12);
}

TEST(Gemm, InnerDimensionMismatchThrows) {
  Matrix<double> a(3, 4), b(5, 2), c(3, 2);
  EXPECT_THROW(gemm<double>(Trans::kNoTrans, Trans::kNoTrans, 1.0, a.view(),
                            b.view(), 0.0, c.view()),
               InvalidArgument);
}

// trmm against explicit triangular multiply.
class TrmmVariants
    : public ::testing::TestWithParam<std::tuple<UpLo, Trans, Diag>> {};

TEST_P(TrmmVariants, MatchesExplicitTriangularProduct) {
  const auto [uplo, trans, diag] = GetParam();
  const index_t m = 6, n = 4;
  auto a_full = Matrix<double>::random(m, m, 11);
  // Build the explicit triangular operator.
  Matrix<double> tri(m, m);
  for (index_t j = 0; j < m; ++j)
    for (index_t i = 0; i < m; ++i) {
      const bool keep = (uplo == UpLo::kUpper) ? (i <= j) : (i >= j);
      tri(i, j) = keep ? a_full(i, j) : 0.0;
      if (i == j && diag == Diag::kUnit) tri(i, j) = 1.0;
    }
  auto b = Matrix<double>::random(m, n, 12);
  Matrix<double> expect(m, n);
  gemm<double>(trans, Trans::kNoTrans, 1.0, tri.view(), b.view(), 0.0,
               expect.view());

  Matrix<double> got = b;
  trmm_left<double>(uplo, trans, diag, a_full.view(), got.view());
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < m; ++i)
      EXPECT_NEAR(got(i, j), expect(i, j), 1e-12)
          << "at (" << i << "," << j << ")";
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, TrmmVariants,
    ::testing::Combine(::testing::Values(UpLo::kUpper, UpLo::kLower),
                       ::testing::Values(Trans::kNoTrans, Trans::kTrans),
                       ::testing::Values(Diag::kUnit, Diag::kNonUnit)));

class TrsmVariants
    : public ::testing::TestWithParam<std::tuple<UpLo, Trans, Diag>> {};

TEST_P(TrsmVariants, SolveThenMultiplyRoundTrips) {
  const auto [uplo, trans, diag] = TrsmVariants::GetParam();
  const index_t m = 6, n = 3;
  auto a = Matrix<double>::random(m, m, 21);
  for (index_t i = 0; i < m; ++i) a(i, i) += 4.0;  // well-conditioned
  auto b = Matrix<double>::random(m, n, 22);
  Matrix<double> x = b;
  trsm_left<double>(uplo, trans, diag, a.view(), x.view());
  // Multiply back: op(tri(A)) * x should equal b.
  Matrix<double> back = x;
  trmm_left<double>(uplo, trans, diag, a.view(), back.view());
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < m; ++i) EXPECT_NEAR(back(i, j), b(i, j), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, TrsmVariants,
    ::testing::Combine(::testing::Values(UpLo::kUpper, UpLo::kLower),
                       ::testing::Values(Trans::kNoTrans, Trans::kTrans),
                       ::testing::Values(Diag::kUnit, Diag::kNonUnit)));

TEST(VectorOps, DotAndAxpy) {
  Matrix<double> x(4, 1), y(4, 1);
  for (index_t i = 0; i < 4; ++i) {
    x(i, 0) = i + 1;  // 1 2 3 4
    y(i, 0) = 1.0;
  }
  EXPECT_DOUBLE_EQ(dot<double>(x.view(), y.view()), 10.0);
  axpy<double>(2.0, x.view(), y.view());
  EXPECT_DOUBLE_EQ(y(3, 0), 9.0);
}

TEST(VectorOps, Nrm2MatchesHypot) {
  Matrix<double> x(3, 1);
  x(0, 0) = 3;
  x(1, 0) = 4;
  x(2, 0) = 12;
  EXPECT_NEAR(nrm2<double>(x.view()), 13.0, 1e-12);
}

TEST(VectorOps, Nrm2AvoidsOverflow) {
  Matrix<double> x(2, 1);
  x(0, 0) = 1e200;
  x(1, 0) = 1e200;
  EXPECT_NEAR(nrm2<double>(x.view()), std::sqrt(2.0) * 1e200, 1e188);
}

TEST(Norms, FrobeniusOfIdentity) {
  auto id = Matrix<double>::identity(9);
  EXPECT_NEAR(norm_frobenius<double>(id.view()), 3.0, 1e-12);
}

TEST(Norms, MaxAbs) {
  Matrix<double> m(2, 2);
  m(0, 0) = -5;
  m(1, 1) = 3;
  EXPECT_DOUBLE_EQ(norm_max<double>(m.view()), 5.0);
}

}  // namespace
}  // namespace tqr::la

namespace tqr::la {
namespace {

class TrsmRightVariants
    : public ::testing::TestWithParam<std::tuple<UpLo, Trans, Diag>> {};

TEST_P(TrsmRightVariants, SolveThenMultiplyRoundTrips) {
  const auto [uplo, trans, diag] = GetParam();
  const index_t m = 5, n = 6;
  auto a = Matrix<double>::random(n, n, 31);
  for (index_t i = 0; i < n; ++i) a(i, i) += 4.0;
  auto b = Matrix<double>::random(m, n, 32);
  Matrix<double> x = b;
  trsm_right<double>(uplo, trans, diag, a.view(), x.view());
  // Multiply back: X * op(tri(A)) must equal B. Build op(tri(A)) densely.
  Matrix<double> tri(n, n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i) {
      const bool keep = (uplo == UpLo::kUpper) ? (i <= j) : (i >= j);
      tri(i, j) = keep ? a(i, j) : 0.0;
      if (i == j && diag == Diag::kUnit) tri(i, j) = 1.0;
    }
  Matrix<double> back(m, n);
  gemm<double>(Trans::kNoTrans, trans, 1.0, x.view(), tri.view(), 0.0,
               back.view());
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < m; ++i) EXPECT_NEAR(back(i, j), b(i, j), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, TrsmRightVariants,
    ::testing::Combine(::testing::Values(UpLo::kUpper, UpLo::kLower),
                       ::testing::Values(Trans::kNoTrans, Trans::kTrans),
                       ::testing::Values(Diag::kUnit, Diag::kNonUnit)));

TEST(SyrkLower, MatchesGemmOnLowerTriangle) {
  const index_t n = 6, k = 4;
  auto a = Matrix<double>::random(n, k, 33);
  Matrix<double> c(n, n);
  c.view().fill(2.0);
  Matrix<double> expect = c;
  syrk_lower<double>(Trans::kNoTrans, 1.5, a.view(), 0.5, c.view());
  Matrix<double> aat(n, n);
  gemm<double>(Trans::kNoTrans, Trans::kTrans, 1.0, a.view(), a.view(), 0.0,
               aat.view());
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i) {
      if (i >= j)
        EXPECT_NEAR(c(i, j), 1.5 * aat(i, j) + 0.5 * 2.0, 1e-12);
      else
        EXPECT_EQ(c(i, j), 2.0);  // strictly-upper untouched
    }
}

TEST(SyrkLower, TransposedInput) {
  const index_t n = 5, k = 7;
  auto a = Matrix<double>::random(k, n, 34);
  Matrix<double> c(n, n);
  syrk_lower<double>(Trans::kTrans, 1.0, a.view(), 0.0, c.view());
  Matrix<double> ata(n, n);
  gemm<double>(Trans::kTrans, Trans::kNoTrans, 1.0, a.view(), a.view(), 0.0,
               ata.view());
  for (index_t j = 0; j < n; ++j)
    for (index_t i = j; i < n; ++i) EXPECT_NEAR(c(i, j), ata(i, j), 1e-12);
}

TEST(SyrkLower, ShapeMismatchRejected) {
  Matrix<double> a(4, 3), c(5, 5);
  EXPECT_THROW(
      syrk_lower<double>(Trans::kNoTrans, 1.0, a.view(), 0.0, c.view()),
      InvalidArgument);
}

// ---------------------------------------------------------------------------
// Degenerate / edge cases for the dispatching routines, pinned against plain
// reference triple loops: k = 0, alpha = 0, beta in {0, 1, other}, 1x1, and
// sub-views with non-unit leading dimension. These are the shapes where a
// fast path (packed gemm, blocked trmm) could silently diverge from the
// loop-based semantics.
// ---------------------------------------------------------------------------

struct DegenerateCase {
  index_t m, n, k;
  double alpha, beta;
};

class GemmDegenerate : public ::testing::TestWithParam<DegenerateCase> {};

TEST_P(GemmDegenerate, MatchesScaledReference) {
  const auto p = GetParam();
  auto a = Matrix<double>::random(p.m, p.k, 41);
  auto b = Matrix<double>::random(p.k, p.n, 42);
  const auto c0 = Matrix<double>::random(p.m, p.n, 43);
  Matrix<double> c = c0;
  gemm<double>(Trans::kNoTrans, Trans::kNoTrans, p.alpha, a.view(), b.view(),
               p.beta, c.view());
  for (index_t j = 0; j < p.n; ++j)
    for (index_t i = 0; i < p.m; ++i) {
      double acc = 0;
      for (index_t q = 0; q < p.k; ++q) acc += a(i, q) * b(q, j);
      const double want = p.alpha * acc + p.beta * c0(i, j);
      EXPECT_NEAR(c(i, j), want, 1e-11) << i << "," << j;
    }
}

INSTANTIATE_TEST_SUITE_P(
    EdgeShapes, GemmDegenerate,
    ::testing::Values(DegenerateCase{3, 4, 0, 1.0, 0.5},   // k = 0
                      DegenerateCase{5, 2, 0, 1.0, 0.0},   // k = 0, beta = 0
                      DegenerateCase{4, 4, 4, 0.0, 2.0},   // alpha = 0
                      DegenerateCase{1, 1, 1, 2.0, 3.0},   // 1x1
                      DegenerateCase{1, 7, 5, -1.0, 1.0},  // single row
                      DegenerateCase{7, 1, 5, 1.0, 0.0},   // single column
                      DegenerateCase{33, 29, 31, 1.5, 1.0}));  // packed path

TEST(GemmDegenerate, SubviewsWithNonUnitLd) {
  // All operands are interior blocks of larger matrices; the halo of C must
  // survive untouched for both the naive and the packed path.
  for (index_t s : {5, 40}) {  // below and above the dispatch threshold
    auto abig = Matrix<double>::random(s + 9, s + 6, 51);
    auto bbig = Matrix<double>::random(s + 4, s + 8, 52);
    auto cbig = Matrix<double>::random(s + 7, s + 5, 53);
    const Matrix<double> csnap = cbig;
    const auto a = ConstMatrixView<double>(abig.view()).block(2, 3, s, s);
    const auto b = ConstMatrixView<double>(bbig.view()).block(1, 4, s, s);
    auto c = cbig.view().block(3, 2, s, s);
    gemm<double>(Trans::kNoTrans, Trans::kNoTrans, 1.0, a, b, 1.0, c);
    for (index_t j = 0; j < s; ++j)
      for (index_t i = 0; i < s; ++i) {
        double acc = 0;
        for (index_t q = 0; q < s; ++q) acc += a(i, q) * b(q, j);
        EXPECT_NEAR(c(i, j), acc + csnap(3 + i, 2 + j), 1e-11 * s);
      }
    for (index_t j = 0; j < cbig.cols(); ++j)
      for (index_t i = 0; i < cbig.rows(); ++i)
        if (!(i >= 3 && i < 3 + s && j >= 2 && j < 2 + s))
          ASSERT_EQ(cbig(i, j), csnap(i, j));
  }
}

TEST(TrmmDegenerate, OneByOneAndSubview) {
  // 1x1 triangle.
  Matrix<double> a1(1, 1), b1(1, 1);
  a1(0, 0) = 3.0;
  b1(0, 0) = 2.0;
  trmm_left<double>(UpLo::kUpper, Trans::kNoTrans, Diag::kNonUnit, a1.view(),
                    b1.view());
  EXPECT_DOUBLE_EQ(b1(0, 0), 6.0);
  b1(0, 0) = 2.0;
  trmm_left<double>(UpLo::kUpper, Trans::kNoTrans, Diag::kUnit, a1.view(),
                    b1.view());
  EXPECT_DOUBLE_EQ(b1(0, 0), 2.0);

  // Sub-view with non-unit ld, m large enough for the blocked split.
  const index_t m = 80, n = 6;
  auto abig = Matrix<double>::random(m + 5, m + 5, 61);
  auto bbig = Matrix<double>::random(m + 8, n + 3, 62);
  const Matrix<double> bsnap = bbig;
  const auto a = ConstMatrixView<double>(abig.view()).block(2, 2, m, m);
  auto b = bbig.view().block(4, 1, m, n);
  trmm_left<double>(UpLo::kLower, Trans::kNoTrans, Diag::kUnit, a, b);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < m; ++i) {
      double acc = bsnap(4 + i, 1 + j);  // unit diagonal
      for (index_t q = 0; q < i; ++q) acc += a(i, q) * bsnap(4 + q, 1 + j);
      ASSERT_NEAR(b(i, j), acc, 1e-10) << i << "," << j;
    }
  for (index_t j = 0; j < bbig.cols(); ++j)
    for (index_t i = 0; i < bbig.rows(); ++i)
      if (!(i >= 4 && i < 4 + m && j >= 1 && j < 1 + n))
        ASSERT_EQ(bbig(i, j), bsnap(i, j));
}

TEST(TrmmDegenerate, BlockedMatchesSmallAcrossSizes) {
  // The recursive split must agree with the base-case loops for every
  // uplo/trans/diag at sizes straddling the split threshold, and must only
  // read the stored triangle (the other triangle is poisoned with NaN).
  for (index_t m : {31, 32, 33, 64, 97}) {
    for (auto uplo : {UpLo::kUpper, UpLo::kLower})
      for (auto trans : {Trans::kNoTrans, Trans::kTrans})
        for (auto diag : {Diag::kUnit, Diag::kNonUnit}) {
          auto a = Matrix<double>::random(m, m, 71);
          for (index_t j = 0; j < m; ++j)
            for (index_t i = 0; i < m; ++i) {
              const bool stored = (uplo == UpLo::kUpper) ? (i <= j) : (i >= j);
              if (!stored)
                a(i, j) = std::numeric_limits<double>::quiet_NaN();
            }
          auto b0 = Matrix<double>::random(m, 5, 72);
          Matrix<double> got = b0;
          trmm_left<double>(uplo, trans, diag, a.view(), got.view());
          // Reference: explicit dense triangular product.
          Matrix<double> tri(m, m);
          for (index_t j = 0; j < m; ++j)
            for (index_t i = 0; i < m; ++i) {
              const bool keep = (uplo == UpLo::kUpper) ? (i <= j) : (i >= j);
              tri(i, j) = keep ? a(i, j) : 0.0;
              if (i == j && diag == Diag::kUnit) tri(i, j) = 1.0;
            }
          Matrix<double> want(m, 5);
          gemm_naive<double>(trans, Trans::kNoTrans, 1.0, tri.view(),
                             b0.view(), 0.0, want.view());
          for (index_t j = 0; j < 5; ++j)
            for (index_t i = 0; i < m; ++i)
              ASSERT_NEAR(got(i, j), want(i, j), 1e-10 * m)
                  << "m=" << m << " i=" << i << " j=" << j;
        }
  }
}

TEST(TrsmDegenerate, OneByOneAndSubview) {
  Matrix<double> a1(1, 1), b1(1, 1);
  a1(0, 0) = 4.0;
  b1(0, 0) = 2.0;
  trsm_left<double>(UpLo::kUpper, Trans::kNoTrans, Diag::kNonUnit, a1.view(),
                    b1.view());
  EXPECT_DOUBLE_EQ(b1(0, 0), 0.5);
  trsm_right<double>(UpLo::kLower, Trans::kNoTrans, Diag::kNonUnit, a1.view(),
                     b1.view());
  EXPECT_DOUBLE_EQ(b1(0, 0), 0.125);

  // trsm_left and trsm_right on interior sub-views round-trip through trmm.
  const index_t m = 9, n = 7;
  auto abig = Matrix<double>::random(m + 4, m + 4, 81);
  for (index_t i = 0; i < m + 4; ++i) abig(i, i) += 4.0;
  auto bbig = Matrix<double>::random(m + 6, n + 2, 82);
  const Matrix<double> bsnap = bbig;
  const auto a = ConstMatrixView<double>(abig.view()).block(1, 1, m, m);
  auto b = bbig.view().block(2, 1, m, n);
  Matrix<double> rhs(m, n);
  copy<double>(ConstMatrixView<double>(b), rhs.view());
  trsm_left<double>(UpLo::kLower, Trans::kTrans, Diag::kNonUnit, a, b);
  Matrix<double> back(m, n);
  copy<double>(ConstMatrixView<double>(b), back.view());
  trmm_left<double>(UpLo::kLower, Trans::kTrans, Diag::kNonUnit, a,
                    back.view());
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < m; ++i)
      EXPECT_NEAR(back(i, j), rhs(i, j), 1e-9);
  for (index_t j = 0; j < bbig.cols(); ++j)
    for (index_t i = 0; i < bbig.rows(); ++i)
      if (!(i >= 2 && i < 2 + m && j >= 1 && j < 1 + n))
        ASSERT_EQ(bbig(i, j), bsnap(i, j));
}

TEST(TrsmRightDegenerate, IdentityOperatorAndZeroRhs) {
  // Zero RHS against an identity triangle stays exactly zero.
  Matrix<double> a(3, 3);
  a.view().set_identity();
  Matrix<double> b(4, 3);
  auto bv = b.view().block(0, 0, 4, 3);
  trsm_right<double>(UpLo::kUpper, Trans::kNoTrans, Diag::kUnit, a.view(), bv);
  for (index_t j = 0; j < 3; ++j)
    for (index_t i = 0; i < 4; ++i) EXPECT_EQ(b(i, j), 0.0);
}

}  // namespace
}  // namespace tqr::la
