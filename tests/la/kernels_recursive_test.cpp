// Parity of the recursive (inner-blocked) factor kernels against the
// unblocked reference kernels. The recursion computes the same Householder
// reflectors in the same order, so V, R, and the full compact-WY factor T
// must agree to machine precision — not just produce *a* valid QR. Swept
// over leaf widths that hit every recursion shape (ib = 1 deepest, ib = b
// degenerate to unblocked) and over fringe / tall-skinny tile geometries.
#include <gtest/gtest.h>

#include "la/checks.hpp"
#include "la/kernels.hpp"

namespace tqr::la {
namespace {

template <typename T>
double tolerance(index_t n) {
  return residual_tolerance<T>(n, 250.0);
}

/// Sign-aware elementwise max difference between two factor outputs: row k
/// of each may be negated together with reflector column k (larfg's sign
/// choice can flip under reordered rounding), so rows are compared up to
/// the sign of the diagonal.
template <typename T>
double max_row_sign_diff(const Matrix<T>& a, const Matrix<T>& b) {
  double worst = 0;
  for (index_t i = 0; i < a.rows(); ++i) {
    const index_t d = std::min(i, a.cols() - 1);
    const double sign = (a(i, d) >= 0) == (b(i, d) >= 0) ? 1.0 : -1.0;
    for (index_t j = 0; j < a.cols(); ++j)
      worst = std::max(worst,
                       std::abs(static_cast<double>(a(i, j)) -
                                sign * static_cast<double>(b(i, j))));
  }
  return worst;
}

struct Shape {
  index_t m, n;
};

class RecursiveGeqrt
    : public ::testing::TestWithParam<std::tuple<Shape, int>> {};

TEST_P(RecursiveGeqrt, MatchesUnblocked) {
  const auto [shape, ib_sel] = GetParam();
  const index_t m = shape.m, n = shape.n;
  // ib_sel: 1 and 4 literal, -2 means n/2, -1 means n (degenerate).
  const index_t ib = ib_sel == -2 ? n / 2 : (ib_sel == -1 ? n : ib_sel);

  auto a0 = Matrix<double>::random(m, n, 7000 + 13 * m + n);
  Matrix<double> rec = a0, ref = a0;
  Matrix<double> t_rec(n, n), t_ref(n, n);
  geqrt<double>(rec.view(), t_rec.view(), ib);
  geqrt_unblocked<double>(ref.view(), t_ref.view());

  // V and R live in the same storage; compare the whole tile sign-aware.
  EXPECT_LT(max_row_sign_diff(rec, ref), tolerance<double>(m));

  // The full T must also match: apply Q^T from each factor set to the
  // original tile; both must reduce it to [R; 0].
  Matrix<double> qa_rec = a0, qa_ref = a0;
  unmqr<double>(rec.view(), t_rec.view(), qa_rec.view(), Trans::kTrans);
  unmqr<double>(ref.view(), t_ref.view(), qa_ref.view(), Trans::kTrans);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = n; i < m; ++i) {
      EXPECT_NEAR(qa_rec(i, j), 0.0, tolerance<double>(m)) << i << "," << j;
    }
  EXPECT_LT(relative_error<double>(qa_rec.view(), qa_ref.view()),
            tolerance<double>(m));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RecursiveGeqrt,
    ::testing::Combine(
        // Square, fringe-width (n not a power of two), tall-skinny (m >> n),
        // and a boundary case right at the default leaf width.
        ::testing::Values(Shape{96, 96}, Shape{96, 41}, Shape{200, 48},
                          Shape{130, 96}, Shape{64, 64}),
        ::testing::Values(1, 4, -2, -1)),
    [](const ::testing::TestParamInfo<std::tuple<Shape, int>>& info) {
      const Shape shape = std::get<0>(info.param);
      const int ib_sel = std::get<1>(info.param);
      std::string ib;
      if (ib_sel == -2)
        ib = "half";
      else if (ib_sel == -1)
        ib = "full";
      else
        ib = std::to_string(ib_sel);
      return "m" + std::to_string(shape.m) + "n" + std::to_string(shape.n) +
             "ib" + ib;
    });

class RecursiveWidths : public ::testing::TestWithParam<int> {};

TEST_P(RecursiveWidths, TsqrtMatchesUnblocked) {
  const index_t b = 96;
  const index_t ib = GetParam();
  for (index_t m2 : {b, 2 * b + 5}) {  // square and taller-than-b A2
    Matrix<double> r1_rec(b, b), r1_ref(b, b);
    auto rnd = Matrix<double>::random(b, b, 8000 + m2);
    for (index_t j = 0; j < b; ++j)
      for (index_t i = 0; i <= j; ++i)
        r1_rec(i, j) = r1_ref(i, j) = rnd(i, j) + (i == j ? 2.0 : 0.0);
    auto a2_0 = Matrix<double>::random(m2, b, 8100 + m2);
    Matrix<double> a2_rec = a2_0, a2_ref = a2_0;
    Matrix<double> t_rec(b, b), t_ref(b, b);

    tsqrt<double>(r1_rec.view(), a2_rec.view(), t_rec.view(), ib);
    tsqrt_unblocked<double>(r1_ref.view(), a2_ref.view(), t_ref.view());

    EXPECT_LT(max_row_sign_diff(r1_rec, r1_ref), tolerance<double>(m2 + b));

    // T parity through the update kernel: same Q^T action on a stacked pair.
    auto c1_0 = Matrix<double>::random(b, b, 8200 + m2);
    auto c2_0 = Matrix<double>::random(m2, b, 8300 + m2);
    Matrix<double> c1_rec = c1_0, c2_rec = c2_0;
    Matrix<double> c1_ref = c1_0, c2_ref = c2_0;
    tsmqr<double>(a2_rec.view(), t_rec.view(), c1_rec.view(), c2_rec.view(),
                  Trans::kTrans);
    tsmqr<double>(a2_ref.view(), t_ref.view(), c1_ref.view(), c2_ref.view(),
                  Trans::kTrans);
    EXPECT_LT(relative_error<double>(c1_rec.view(), c1_ref.view()),
              tolerance<double>(m2 + b));
    EXPECT_LT(relative_error<double>(c2_rec.view(), c2_ref.view()),
              tolerance<double>(m2 + b));
  }
}

TEST_P(RecursiveWidths, TtqrtMatchesUnblockedAndKeepsVTriangular) {
  const index_t b = 96;
  const index_t ib = GetParam();
  Matrix<double> r1_rec(b, b), r1_ref(b, b), r2_rec(b, b), r2_ref(b, b);
  auto ra = Matrix<double>::random(b, b, 9000);
  auto rb = Matrix<double>::random(b, b, 9001);
  const double kSentinel = -777.25;
  for (index_t j = 0; j < b; ++j)
    for (index_t i = 0; i < b; ++i) {
      if (i <= j) {
        r1_rec(i, j) = r1_ref(i, j) = ra(i, j) + (i == j ? 2.0 : 0.0);
        r2_rec(i, j) = r2_ref(i, j) = rb(i, j) + (i == j ? 2.0 : 0.0);
      } else {
        // The TT contract: strictly-lower entries of R2 are never touched.
        r1_rec(i, j) = r1_ref(i, j) = 0.0;
        r2_rec(i, j) = r2_ref(i, j) = kSentinel;
      }
    }
  Matrix<double> t_rec(b, b), t_ref(b, b);
  ttqrt<double>(r1_rec.view(), r2_rec.view(), t_rec.view(), ib);
  ttqrt_unblocked<double>(r1_ref.view(), r2_ref.view(), t_ref.view());

  for (index_t j = 0; j < b; ++j)
    for (index_t i = j + 1; i < b; ++i) {
      ASSERT_EQ(r2_rec(i, j), kSentinel) << "V2 lost triangularity";
    }
  EXPECT_LT(max_row_sign_diff(r1_rec, r1_ref), tolerance<double>(2 * b));

  auto c1_0 = Matrix<double>::random(b, b, 9100);
  auto c2_0 = Matrix<double>::random(b, b, 9101);
  Matrix<double> c1_rec = c1_0, c2_rec = c2_0;
  Matrix<double> c1_ref = c1_0, c2_ref = c2_0;
  // Sentinels must not poison the apply either: ttmqr reads only the upper
  // triangle of V2.
  ttmqr<double>(r2_rec.view(), t_rec.view(), c1_rec.view(), c2_rec.view(),
                Trans::kTrans);
  ttmqr<double>(r2_ref.view(), t_ref.view(), c1_ref.view(), c2_ref.view(),
                Trans::kTrans);
  EXPECT_LT(relative_error<double>(c1_rec.view(), c1_ref.view()),
            tolerance<double>(2 * b));
  EXPECT_LT(relative_error<double>(c2_rec.view(), c2_ref.view()),
            tolerance<double>(2 * b));
}

TEST_P(RecursiveWidths, FloatGeqrtBackwardStable) {
  const index_t m = 120, n = 96;
  const index_t ib = GetParam();
  auto a0 = Matrix<float>::random(m, n, 9500);
  Matrix<float> a = a0;
  Matrix<float> t(n, n);
  geqrt<float>(a.view(), t.view(), ib);

  Matrix<float> qa = a0;
  unmqr<float>(a.view(), t.view(), qa.view(), Trans::kTrans);
  // Q^T A = [R; 0] at float precision, R matching the factored triangle.
  double worst = 0;
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i <= j; ++i)
      worst = std::max(worst,
                       std::abs(static_cast<double>(qa(i, j) - a(i, j))));
    for (index_t i = n; i < m; ++i)
      worst = std::max(worst, std::abs(static_cast<double>(qa(i, j))));
  }
  const double afro = norm_frobenius<float>(a0.view());
  EXPECT_LT(worst / afro, tolerance<float>(m));
  // And nowhere near double tolerance — guards against this test silently
  // running in the wrong precision.
  EXPECT_GT(tolerance<float>(m), 1e3 * tolerance<double>(m));
}

INSTANTIATE_TEST_SUITE_P(Widths, RecursiveWidths,
                         ::testing::Values(1, 4, 48, 96));

}  // namespace
}  // namespace tqr::la
