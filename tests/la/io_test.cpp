#include "la/io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/error.hpp"

namespace tqr::la {
namespace {

class IoTest : public ::testing::Test {
 protected:
  std::string temp_path(const std::string& name) {
    return testing::TempDir() + "tqr_io_" + name;
  }
  void TearDown() override {
    for (const auto& p : created_) std::remove(p.c_str());
  }
  std::string track(std::string p) {
    created_.push_back(p);
    return p;
  }
  std::vector<std::string> created_;
};

TEST_F(IoTest, MatrixMarketRoundTrip) {
  auto a = Matrix<double>::random(7, 5, 11);
  const std::string path = track(temp_path("rt.mtx"));
  write_matrix_market(path, a.view());
  auto b = read_matrix_market(path);
  ASSERT_EQ(b.rows(), 7);
  ASSERT_EQ(b.cols(), 5);
  for (index_t j = 0; j < 5; ++j)
    for (index_t i = 0; i < 7; ++i) EXPECT_EQ(b(i, j), a(i, j));
}

TEST_F(IoTest, BinaryRoundTripBitExact) {
  auto a = Matrix<double>::random(33, 17, 12);
  a(0, 0) = 1e-300;  // denormal-ish values survive binary exactly
  const std::string path = track(temp_path("rt.bin"));
  write_binary(path, a.view());
  auto b = read_binary(path);
  for (index_t j = 0; j < 17; ++j)
    for (index_t i = 0; i < 33; ++i) EXPECT_EQ(b(i, j), a(i, j));
}

TEST_F(IoTest, BinaryRoundTripOfSubView) {
  // Views with ld > rows must serialize correctly.
  auto a = Matrix<double>::random(10, 10, 13);
  const std::string path = track(temp_path("view.bin"));
  write_binary(path, a.view().block(2, 3, 4, 5));
  auto b = read_binary(path);
  ASSERT_EQ(b.rows(), 4);
  ASSERT_EQ(b.cols(), 5);
  for (index_t j = 0; j < 5; ++j)
    for (index_t i = 0; i < 4; ++i) EXPECT_EQ(b(i, j), a(2 + i, 3 + j));
}

TEST_F(IoTest, DispatchByExtension) {
  auto a = Matrix<double>::random(4, 4, 14);
  const std::string mtx = track(temp_path("d.mtx"));
  const std::string bin = track(temp_path("d.bin"));
  write_matrix(mtx, a.view());
  write_matrix(bin, a.view());
  // The .mtx must be readable as text.
  std::ifstream in(mtx);
  std::string first;
  std::getline(in, first);
  EXPECT_EQ(first.rfind("%%MatrixMarket", 0), 0u);
  auto b1 = read_matrix(mtx);
  auto b2 = read_matrix(bin);
  for (index_t j = 0; j < 4; ++j)
    for (index_t i = 0; i < 4; ++i) {
      EXPECT_EQ(b1(i, j), a(i, j));
      EXPECT_EQ(b2(i, j), a(i, j));
    }
}

TEST_F(IoTest, MissingFileThrows) {
  EXPECT_THROW(read_matrix_market("/nonexistent/nope.mtx"), Error);
  EXPECT_THROW(read_binary("/nonexistent/nope.bin"), Error);
}

TEST_F(IoTest, RejectsCoordinateFormat) {
  const std::string path = track(temp_path("coord.mtx"));
  std::ofstream out(path);
  out << "%%MatrixMarket matrix coordinate real general\n3 3 1\n1 1 5.0\n";
  out.close();
  EXPECT_THROW(read_matrix_market(path), Error);
}

TEST_F(IoTest, RejectsGarbageBinary) {
  const std::string path = track(temp_path("garbage.bin"));
  std::ofstream out(path, std::ios::binary);
  out << "this is not a matrix";
  out.close();
  EXPECT_THROW(read_binary(path), Error);
}

TEST_F(IoTest, RejectsTruncatedBinary) {
  auto a = Matrix<double>::random(8, 8, 15);
  const std::string path = track(temp_path("trunc.bin"));
  write_binary(path, a.view());
  // Truncate the file to half size.
  std::ifstream in(path, std::ios::binary);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(content.data(),
            static_cast<std::streamsize>(content.size() / 2));
  out.close();
  EXPECT_THROW(read_binary(path), Error);
}

TEST_F(IoTest, CommentsInMatrixMarketSkipped) {
  const std::string path = track(temp_path("comments.mtx"));
  std::ofstream out(path);
  out << "%%MatrixMarket matrix array real general\n"
      << "% comment one\n% comment two\n"
      << "2 2\n1\n2\n3\n4\n";
  out.close();
  auto a = read_matrix_market(path);
  EXPECT_EQ(a(0, 0), 1.0);
  EXPECT_EQ(a(1, 0), 2.0);
  EXPECT_EQ(a(0, 1), 3.0);
  EXPECT_EQ(a(1, 1), 4.0);
}

}  // namespace
}  // namespace tqr::la
