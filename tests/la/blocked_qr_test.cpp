#include "la/blocked_qr.hpp"

#include <gtest/gtest.h>

#include "la/checks.hpp"
#include "la/reference_qr.hpp"

namespace tqr::la {
namespace {

class PanelWidths : public ::testing::TestWithParam<int> {};

TEST_P(PanelWidths, FactorsToMachinePrecision) {
  const index_t m = 40, n = 24;
  const index_t nb = GetParam();
  auto a = Matrix<double>::random(m, n, 300 + nb);
  BlockedQr<double> qr(a, nb);
  auto q = qr.q();
  EXPECT_LT(orthogonality_residual<double>(q.view()),
            residual_tolerance<double>(m));
  auto r = qr.r();
  Matrix<double> r_full(m, n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i <= j; ++i) r_full(i, j) = r(i, j);
  EXPECT_LT(reconstruction_residual<double>(a.view(), q.view(),
                                            r_full.view()),
            residual_tolerance<double>(m));
}

TEST_P(PanelWidths, MatchesReferenceSolve) {
  const index_t n = 24;
  const index_t nb = GetParam();
  auto a = Matrix<double>::random(n, n, 400 + nb);
  for (index_t i = 0; i < n; ++i) a(i, i) += 4.0;
  auto rhs = Matrix<double>::random(n, 2, 401);
  BlockedQr<double> qr(a, nb);
  ReferenceQr<double> ref(a);
  auto x = qr.solve(rhs);
  auto x_ref = ref.solve(rhs);
  for (index_t j = 0; j < 2; ++j)
    for (index_t i = 0; i < n; ++i)
      EXPECT_NEAR(x(i, j), x_ref(i, j), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Widths, PanelWidths,
                         ::testing::Values(1, 2, 4, 8, 24, 64));

TEST(BlockedQr, ApplyQRoundTrips) {
  auto a = Matrix<double>::random(20, 12, 5);
  BlockedQr<double> qr(a, 4);
  auto c0 = Matrix<double>::random(20, 3, 6);
  Matrix<double> c = c0;
  qr.apply_q(c.view(), Trans::kTrans);
  qr.apply_q(c.view(), Trans::kNoTrans);
  for (index_t j = 0; j < 3; ++j)
    for (index_t i = 0; i < 20; ++i) EXPECT_NEAR(c(i, j), c0(i, j), 1e-10);
}

TEST(BlockedQr, WideMatrixRejected) {
  auto a = Matrix<double>::random(4, 8, 7);
  EXPECT_THROW(BlockedQr<double>(a, 4), InvalidArgument);
}

TEST(BlockedQr, InvalidPanelWidthRejected) {
  auto a = Matrix<double>::random(8, 8, 8);
  EXPECT_THROW(BlockedQr<double>(a, 0), InvalidArgument);
}

}  // namespace
}  // namespace tqr::la
