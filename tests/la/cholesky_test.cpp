#include "la/cholesky.hpp"

#include <gtest/gtest.h>

#include "la/checks.hpp"
#include "la/generators.hpp"
#include "la/reference_qr.hpp"

namespace tqr::la {
namespace {

Matrix<double> random_spd(index_t n, std::uint64_t seed, double shift = 1.0) {
  auto b = Matrix<double>::random(n, n, seed);
  Matrix<double> a(n, n);
  gemm<double>(Trans::kNoTrans, Trans::kTrans, 1.0, b.view(), b.view(), 0.0,
               a.view());
  for (index_t i = 0; i < n; ++i) a(i, i) += shift;
  return a;
}

class PotrfBlocks : public ::testing::TestWithParam<int> {};

TEST_P(PotrfBlocks, FactorReassembles) {
  const index_t n = 24;
  const index_t nb = GetParam();
  auto a = random_spd(n, 1);
  Matrix<double> l = a;
  potrf_lower<double>(l.view(), nb);
  // Rebuild lower * lower^T and compare the lower triangle of A.
  Matrix<double> lower(n, n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = j; i < n; ++i) lower(i, j) = l(i, j);
  Matrix<double> llt(n, n);
  gemm<double>(Trans::kNoTrans, Trans::kTrans, 1.0, lower.view(),
               lower.view(), 0.0, llt.view());
  for (index_t j = 0; j < n; ++j)
    for (index_t i = j; i < n; ++i)
      EXPECT_NEAR(llt(i, j), a(i, j), 1e-10) << i << "," << j;
}

TEST_P(PotrfBlocks, BlockedMatchesUnblocked) {
  const index_t n = 20;
  auto a = random_spd(n, 2);
  Matrix<double> plain = a, blocked = a;
  potrf_lower<double>(plain.view(), 0);
  potrf_lower<double>(blocked.view(), GetParam());
  for (index_t j = 0; j < n; ++j)
    for (index_t i = j; i < n; ++i)
      EXPECT_NEAR(blocked(i, j), plain(i, j), 1e-11);
}

INSTANTIATE_TEST_SUITE_P(Blocks, PotrfBlocks, ::testing::Values(1, 3, 8, 64));

TEST(Potrf, RejectsIndefiniteMatrix) {
  Matrix<double> a = Matrix<double>::identity(4);
  a(2, 2) = -1.0;
  EXPECT_THROW(potrf_lower<double>(a.view()), Error);
}

TEST(Potrf, LeavesUpperTriangleUntouched) {
  const index_t n = 8;
  auto a = random_spd(n, 3);
  Matrix<double> marked = a;
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < j; ++i) marked(i, j) = 777.0;
  potrf_lower<double>(marked.view(), 4);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < j; ++i) EXPECT_EQ(marked(i, j), 777.0);
}

TEST(CholeskyQr, WellConditionedMatchesHouseholder) {
  const index_t m = 40, n = 12;
  auto a = Matrix<double>::random(m, n, 4);
  auto cqr = cholesky_qr<double>(a);
  // Q orthonormal columns, Q R = A.
  Matrix<double> gram(n, n);
  gemm<double>(Trans::kTrans, Trans::kNoTrans, 1.0, cqr.q.view(),
               cqr.q.view(), 0.0, gram.view());
  for (index_t i = 0; i < n; ++i) gram(i, i) -= 1.0;
  EXPECT_LT(norm_frobenius<double>(gram.view()), 1e-10);
  Matrix<double> qr(m, n);
  gemm<double>(Trans::kNoTrans, Trans::kNoTrans, 1.0, cqr.q.view(),
               cqr.r.view(), 0.0, qr.view());
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < m; ++i) EXPECT_NEAR(qr(i, j), a(i, j), 1e-10);
  // R matches the Householder R up to signs.
  ReferenceQr<double> ref(a);
  auto r_ref = ref.r();
  for (index_t i = 0; i < n; ++i) {
    const double sign =
        (cqr.r(i, i) >= 0) == (r_ref(i, i) >= 0) ? 1.0 : -1.0;
    for (index_t j = i; j < n; ++j)
      EXPECT_NEAR(cqr.r(i, j), sign * r_ref(i, j), 1e-9);
  }
}

TEST(CholeskyQr, OrthogonalityDegradesQuadraticallyWithCondition) {
  // The known defect: ||Q^T Q - I|| ~ kappa^2 eps, vs ~eps for Householder.
  const index_t n = 24;
  double prev = 0;
  for (double cond : {1e2, 1e4, 1e6}) {
    auto a = random_with_condition<double>(n, cond, 10);
    auto cqr = cholesky_qr<double>(a);
    Matrix<double> gram(n, n);
    gemm<double>(Trans::kTrans, Trans::kNoTrans, 1.0, cqr.q.view(),
                 cqr.q.view(), 0.0, gram.view());
    for (index_t i = 0; i < n; ++i) gram(i, i) -= 1.0;
    const double err = norm_frobenius<double>(gram.view());
    EXPECT_GT(err, prev);
    prev = err;
  }
  // At kappa = 1e6 the error should be visibly worse than machine eps.
  EXPECT_GT(prev, 1e-8);
}

TEST(CholeskyQr, BreaksDownNearSqrtEpsCondition) {
  // kappa ~ 1e9 => Gram matrix numerically indefinite => clean failure.
  auto a = random_with_condition<double>(24, 1e9, 11);
  EXPECT_THROW(cholesky_qr<double>(a), Error);
}

TEST(CholeskyQr2, RestoresMachinePrecisionOrthogonality) {
  const index_t n = 24;
  for (double cond : {1e2, 1e4, 1e6}) {
    auto a = random_with_condition<double>(n, cond, 12);
    auto cqr2 = cholesky_qr2<double>(a);
    Matrix<double> gram(n, n);
    gemm<double>(Trans::kTrans, Trans::kNoTrans, 1.0, cqr2.q.view(),
                 cqr2.q.view(), 0.0, gram.view());
    for (index_t i = 0; i < n; ++i) gram(i, i) -= 1.0;
    EXPECT_LT(norm_frobenius<double>(gram.view()), 1e-12) << "cond=" << cond;
    // And A = Q R still holds.
    Matrix<double> qr(n, n);
    gemm<double>(Trans::kNoTrans, Trans::kNoTrans, 1.0, cqr2.q.view(),
                 cqr2.r.view(), 0.0, qr.view());
    const double denom = norm_frobenius<double>(a.view());
    double err = 0;
    for (index_t j = 0; j < n; ++j)
      for (index_t i = 0; i < n; ++i) {
        const double d = qr(i, j) - a(i, j);
        err += d * d;
      }
    EXPECT_LT(std::sqrt(err) / denom, 1e-11) << "cond=" << cond;
  }
}

TEST(CholeskyQr, WideMatrixRejected) {
  auto a = Matrix<double>::random(4, 8, 13);
  EXPECT_THROW(cholesky_qr<double>(a), InvalidArgument);
}

}  // namespace
}  // namespace tqr::la
