// Correctness of the tile kernels: factor-and-reassemble identities,
// orthogonality, structure preservation, and TS/TT equivalence, over a
// parameterized sweep of tile sizes in float and double.
#include "la/kernels.hpp"

#include <gtest/gtest.h>

#include "la/blas.hpp"
#include "la/checks.hpp"
#include "la/matrix.hpp"

namespace tqr::la {
namespace {

// --- geqrt -----------------------------------------------------------------

class GeqrtSizes : public ::testing::TestWithParam<int> {};

TEST_P(GeqrtSizes, ReconstructsInputAndQOrthogonal) {
  const index_t b = GetParam();
  auto a0 = Matrix<double>::random(b, b, 100 + b);
  Matrix<double> a = a0;
  Matrix<double> t(b, b);
  geqrt<double>(a.view(), t.view());

  // Q = unmqr applied to the identity.
  Matrix<double> q = Matrix<double>::identity(b);
  unmqr<double>(a.view(), t.view(), q.view(), Trans::kNoTrans);
  EXPECT_LT(orthogonality_residual<double>(q.view()),
            residual_tolerance<double>(b));

  // R = upper triangle of the factored tile.
  Matrix<double> r(b, b);
  for (index_t j = 0; j < b; ++j)
    for (index_t i = 0; i <= j; ++i) r(i, j) = a(i, j);
  EXPECT_LT(reconstruction_residual<double>(a0.view(), q.view(), r.view()),
            residual_tolerance<double>(b));
}

TEST_P(GeqrtSizes, QtTimesAEqualsR) {
  const index_t b = GetParam();
  auto a0 = Matrix<double>::random(b, b, 200 + b);
  Matrix<double> a = a0;
  Matrix<double> t(b, b);
  geqrt<double>(a.view(), t.view());

  Matrix<double> qta = a0;
  unmqr<double>(a.view(), t.view(), qta.view(), Trans::kTrans);
  // Q^T A should equal R: upper triangle matches, lower ~ 0.
  for (index_t j = 0; j < b; ++j)
    for (index_t i = 0; i < b; ++i) {
      if (i <= j)
        EXPECT_NEAR(qta(i, j), a(i, j), 1e-10) << i << "," << j;
      else
        EXPECT_NEAR(qta(i, j), 0.0, 1e-10) << i << "," << j;
    }
}

TEST_P(GeqrtSizes, ApplyQThenQtIsIdentity) {
  const index_t b = GetParam();
  auto a = Matrix<double>::random(b, b, 300 + b);
  Matrix<double> t(b, b);
  geqrt<double>(a.view(), t.view());

  auto c0 = Matrix<double>::random(b, b, 301 + b);
  Matrix<double> c = c0;
  unmqr<double>(a.view(), t.view(), c.view(), Trans::kNoTrans);
  unmqr<double>(a.view(), t.view(), c.view(), Trans::kTrans);
  for (index_t j = 0; j < b; ++j)
    for (index_t i = 0; i < b; ++i) EXPECT_NEAR(c(i, j), c0(i, j), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(TileSweep, GeqrtSizes,
                         ::testing::Values(1, 2, 3, 4, 8, 13, 16, 24, 32));

TEST(Geqrt, RectangularTallTile) {
  const index_t m = 12, n = 5;
  auto a0 = Matrix<double>::random(m, n, 7);
  Matrix<double> a = a0;
  Matrix<double> t(n, n);
  geqrt<double>(a.view(), t.view());
  Matrix<double> qta = a0;
  unmqr<double>(a.view(), t.view(), qta.view(), Trans::kTrans);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = j + 1; i < m; ++i)
      EXPECT_NEAR(qta(i, j), 0.0, 1e-10);
}

TEST(Geqrt, WideTileRejected) {
  Matrix<double> a(3, 5), t(5, 5);
  EXPECT_THROW(geqrt<double>(a.view(), t.view()), InvalidArgument);
}

TEST(Geqrt, ZeroColumnYieldsTauZeroAndSurvives) {
  const index_t b = 5;
  Matrix<double> a(b, b);
  // Column 2 entirely zero below and on the diagonal tail.
  for (index_t j = 0; j < b; ++j)
    for (index_t i = 0; i < b; ++i)
      a(i, j) = (j == 2) ? 0.0 : static_cast<double>((i * 7 + j * 3) % 5) - 2;
  Matrix<double> a0 = a;
  Matrix<double> t(b, b);
  geqrt<double>(a.view(), t.view());
  Matrix<double> q = Matrix<double>::identity(b);
  unmqr<double>(a.view(), t.view(), q.view(), Trans::kNoTrans);
  EXPECT_LT(orthogonality_residual<double>(q.view()), 1e-10);
}

TEST(Geqrt, AlreadyTriangularInputNearlyUnchanged) {
  const index_t b = 6;
  Matrix<double> a(b, b);
  for (index_t j = 0; j < b; ++j)
    for (index_t i = 0; i <= j; ++i) a(i, j) = 1.0 + i + j;
  Matrix<double> a0 = a;
  Matrix<double> t(b, b);
  geqrt<double>(a.view(), t.view());
  // R must match the input up to column signs.
  for (index_t j = 0; j < b; ++j) {
    const double sign = a(j, j) * a0(j, j) >= 0 ? 1.0 : -1.0;
    for (index_t i = 0; i <= j; ++i)
      EXPECT_NEAR(a(i, j), sign * a0(i, j), 1e-10);
  }
}

// --- tsqrt / tsmqr ----------------------------------------------------------

class TsSizes : public ::testing::TestWithParam<int> {};

TEST_P(TsSizes, StackedFactorizationReconstructs) {
  const index_t b = GetParam();
  // Start from a geqrt-triangulated top tile, as in the real algorithm.
  auto top0 = Matrix<double>::random(b, b, 400 + b);
  Matrix<double> top = top0;
  Matrix<double> tg(b, b);
  geqrt<double>(top.view(), tg.view());
  Matrix<double> r1(b, b);
  for (index_t j = 0; j < b; ++j)
    for (index_t i = 0; i <= j; ++i) r1(i, j) = top(i, j);

  auto a2_0 = Matrix<double>::random(b, b, 401 + b);
  Matrix<double> r1w = r1;
  Matrix<double> a2 = a2_0;
  Matrix<double> t(b, b);
  tsqrt<double>(r1w.view(), a2.view(), t.view());

  // Apply Q^T to the original stacked [R1; A2]: must give [R_new; 0].
  Matrix<double> stacked(2 * b, b);
  copy<double>(r1.view(), stacked.block(0, 0, b, b));
  copy<double>(a2_0.view(), stacked.block(b, 0, b, b));
  tsmqr<double>(a2.view(), t.view(), stacked.block(0, 0, b, b),
                stacked.block(b, 0, b, b), Trans::kTrans);
  for (index_t j = 0; j < b; ++j) {
    for (index_t i = 0; i <= j; ++i)
      EXPECT_NEAR(stacked(i, j), r1w(i, j), 1e-9);
    for (index_t i = b; i < 2 * b; ++i)
      EXPECT_NEAR(stacked(i, j), 0.0, 1e-9);
  }
}

TEST_P(TsSizes, QIsOrthogonal) {
  const index_t b = GetParam();
  Matrix<double> r1(b, b);
  auto rnd = Matrix<double>::random(b, b, 500 + b);
  for (index_t j = 0; j < b; ++j)
    for (index_t i = 0; i <= j; ++i) r1(i, j) = rnd(i, j) + (i == j ? 2 : 0);
  auto a2 = Matrix<double>::random(b, b, 501 + b);
  Matrix<double> t(b, b);
  tsqrt<double>(r1.view(), a2.view(), t.view());

  Matrix<double> q = Matrix<double>::identity(2 * b);
  tsmqr<double>(a2.view(), t.view(), q.block(0, 0, b, 2 * b),
                q.block(b, 0, b, 2 * b), Trans::kNoTrans);
  EXPECT_LT(orthogonality_residual<double>(q.view()),
            residual_tolerance<double>(2 * b));
}

TEST_P(TsSizes, TsmqrQThenQtRoundTrips) {
  const index_t b = GetParam();
  Matrix<double> r1(b, b);
  for (index_t j = 0; j < b; ++j)
    for (index_t i = 0; i <= j; ++i) r1(i, j) = 1.0 + i + 2 * j;
  auto a2 = Matrix<double>::random(b, b, 502 + b);
  Matrix<double> t(b, b);
  tsqrt<double>(r1.view(), a2.view(), t.view());

  auto c1_0 = Matrix<double>::random(b, b, 503 + b);
  auto c2_0 = Matrix<double>::random(b, b, 504 + b);
  Matrix<double> c1 = c1_0, c2 = c2_0;
  tsmqr<double>(a2.view(), t.view(), c1.view(), c2.view(), Trans::kTrans);
  tsmqr<double>(a2.view(), t.view(), c1.view(), c2.view(), Trans::kNoTrans);
  for (index_t j = 0; j < b; ++j)
    for (index_t i = 0; i < b; ++i) {
      EXPECT_NEAR(c1(i, j), c1_0(i, j), 1e-9);
      EXPECT_NEAR(c2(i, j), c2_0(i, j), 1e-9);
    }
}

INSTANTIATE_TEST_SUITE_P(TileSweep, TsSizes,
                         ::testing::Values(1, 2, 4, 8, 16, 24));

TEST(Tsqrt, PreservesVBelowDiagonalOfTopTile) {
  // The diagonal tile keeps its geqrt reflectors under the R part; TSQRT
  // must not disturb them (storage contract of the tiled algorithm).
  const index_t b = 8;
  auto top = Matrix<double>::random(b, b, 42);
  Matrix<double> tg(b, b);
  geqrt<double>(top.view(), tg.view());
  Matrix<double> below_before(b, b);
  for (index_t j = 0; j < b; ++j)
    for (index_t i = j + 1; i < b; ++i) below_before(i, j) = top(i, j);

  auto a2 = Matrix<double>::random(b, b, 43);
  Matrix<double> t(b, b);
  tsqrt<double>(top.view(), a2.view(), t.view());
  for (index_t j = 0; j < b; ++j)
    for (index_t i = j + 1; i < b; ++i)
      EXPECT_EQ(top(i, j), below_before(i, j));
}

// --- ttqrt / ttmqr ----------------------------------------------------------

class TtSizes : public ::testing::TestWithParam<int> {};

TEST_P(TtSizes, TriangleOnTriangleReconstructs) {
  const index_t b = GetParam();
  Matrix<double> r1(b, b), r2(b, b);
  auto rnd1 = Matrix<double>::random(b, b, 600 + b);
  auto rnd2 = Matrix<double>::random(b, b, 601 + b);
  for (index_t j = 0; j < b; ++j)
    for (index_t i = 0; i <= j; ++i) {
      r1(i, j) = rnd1(i, j) + (i == j ? 1.5 : 0);
      r2(i, j) = rnd2(i, j) + (i == j ? 1.5 : 0);
    }
  Matrix<double> r1_0 = r1, r2_0 = r2;
  Matrix<double> t(b, b);
  ttqrt<double>(r1.view(), r2.view(), t.view());

  // Q^T [R1; R2] = [R_new; 0].
  Matrix<double> c1 = r1_0, c2 = r2_0;
  ttmqr<double>(r2.view(), t.view(), c1.view(), c2.view(), Trans::kTrans);
  for (index_t j = 0; j < b; ++j) {
    for (index_t i = 0; i <= j; ++i) EXPECT_NEAR(c1(i, j), r1(i, j), 1e-9);
    for (index_t i = 0; i < b; ++i) EXPECT_NEAR(c2(i, j), 0.0, 1e-9);
  }
}

TEST_P(TtSizes, QIsOrthogonal) {
  const index_t b = GetParam();
  Matrix<double> r1(b, b), r2(b, b);
  for (index_t j = 0; j < b; ++j)
    for (index_t i = 0; i <= j; ++i) {
      r1(i, j) = (i == j) ? 3.0 + j : 0.5 * (i + j);
      r2(i, j) = (i == j) ? 2.0 + j : 0.3 * (i - j);
    }
  Matrix<double> t(b, b);
  ttqrt<double>(r1.view(), r2.view(), t.view());

  Matrix<double> q = Matrix<double>::identity(2 * b);
  ttmqr<double>(r2.view(), t.view(), q.block(0, 0, b, 2 * b),
                q.block(b, 0, b, 2 * b), Trans::kNoTrans);
  EXPECT_LT(orthogonality_residual<double>(q.view()),
            residual_tolerance<double>(2 * b));
}

TEST_P(TtSizes, V2StaysUpperTriangular) {
  const index_t b = GetParam();
  Matrix<double> r1(b, b), r2(b, b);
  auto rnd = Matrix<double>::random(b, b, 700 + b);
  for (index_t j = 0; j < b; ++j)
    for (index_t i = 0; i <= j; ++i) {
      r1(i, j) = rnd(i, j) + (i == j ? 2 : 0);
      r2(i, j) = rnd(j, i) + (i == j ? 2 : 0);
    }
  Matrix<double> t(b, b);
  ttqrt<double>(r1.view(), r2.view(), t.view());
  for (index_t j = 0; j < b; ++j)
    for (index_t i = j + 1; i < b; ++i) EXPECT_EQ(r2(i, j), 0.0);
}

INSTANTIATE_TEST_SUITE_P(TileSweep, TtSizes,
                         ::testing::Values(1, 2, 4, 8, 16, 24));

// --- float precision --------------------------------------------------------

TEST(KernelsFloat, GeqrtReconstructsInSingle) {
  const index_t b = 16;
  auto a0 = Matrix<float>::random(b, b, 9);
  Matrix<float> a = a0;
  Matrix<float> t(b, b);
  geqrt<float>(a.view(), t.view());
  Matrix<float> q = Matrix<float>::identity(b);
  unmqr<float>(a.view(), t.view(), q.view(), Trans::kNoTrans);
  EXPECT_LT(orthogonality_residual<float>(q.view()),
            residual_tolerance<float>(b));
}

TEST(KernelsFloat, TsqrtReconstructsInSingle) {
  const index_t b = 16;
  Matrix<float> r1(b, b);
  auto rnd = Matrix<float>::random(b, b, 10);
  for (index_t j = 0; j < b; ++j)
    for (index_t i = 0; i <= j; ++i)
      r1(i, j) = rnd(i, j) + (i == j ? 2.0f : 0.0f);
  auto a2 = Matrix<float>::random(b, b, 11);
  Matrix<float> r1_0 = r1, a2_0 = a2;
  Matrix<float> t(b, b);
  tsqrt<float>(r1.view(), a2.view(), t.view());
  Matrix<float> c1 = r1_0, c2 = a2_0;
  tsmqr<float>(a2.view(), t.view(), c1.view(), c2.view(), Trans::kTrans);
  for (index_t j = 0; j < b; ++j)
    for (index_t i = 0; i < b; ++i)
      EXPECT_NEAR(c2(i, j), 0.0f, 5e-5f);
}

}  // namespace
}  // namespace tqr::la
