// Inner-blocked kernels must be numerically interchangeable with the
// unblocked ones (same factored subspace, machine-precision factors),
// including through the full tiled factorization.
#include "la/kernels_ib.hpp"

#include <gtest/gtest.h>

#include "core/tiled_qr.hpp"
#include "la/checks.hpp"

namespace tqr::la {
namespace {

class IbWidths : public ::testing::TestWithParam<int> {};

TEST_P(IbWidths, GeqrtIbProducesValidQr) {
  const index_t b = 24;
  const index_t ib = GetParam();
  auto a0 = Matrix<double>::random(b, b, 800 + ib);
  Matrix<double> a = a0;
  Matrix<double> t(b, b);
  geqrt_ib<double>(a.view(), t.view(), ib);

  // Q from the blocked factors via unmqr_ib applied to the identity.
  Matrix<double> q = Matrix<double>::identity(b);
  unmqr_ib<double>(a.view(), t.view(), q.view(), Trans::kNoTrans, ib);
  EXPECT_LT(orthogonality_residual<double>(q.view()),
            residual_tolerance<double>(b));

  Matrix<double> r(b, b);
  for (index_t j = 0; j < b; ++j)
    for (index_t i = 0; i <= j; ++i) r(i, j) = a(i, j);
  EXPECT_LT(reconstruction_residual<double>(a0.view(), q.view(), r.view()),
            residual_tolerance<double>(b));
}

TEST_P(IbWidths, GeqrtIbMatchesUnblockedR) {
  // Same math, same column spans: R must match the unblocked R up to row
  // signs (each block's larfg sees the same leading data).
  const index_t b = 24;
  const index_t ib = GetParam();
  auto a0 = Matrix<double>::random(b, b, 900 + ib);
  Matrix<double> blocked = a0, plain = a0;
  Matrix<double> tb(b, b), tp(b, b);
  geqrt_ib<double>(blocked.view(), tb.view(), ib);
  geqrt<double>(plain.view(), tp.view());
  for (index_t i = 0; i < b; ++i) {
    const double sign =
        (blocked(i, i) >= 0) == (plain(i, i) >= 0) ? 1.0 : -1.0;
    for (index_t j = i; j < b; ++j)
      EXPECT_NEAR(blocked(i, j), sign * plain(i, j), 1e-10);
  }
}

TEST_P(IbWidths, TsqrtIbEliminatesStackedTile) {
  const index_t b = 24;
  const index_t ib = GetParam();
  Matrix<double> r1(b, b);
  auto rnd = Matrix<double>::random(b, b, 1000 + ib);
  for (index_t j = 0; j < b; ++j)
    for (index_t i = 0; i <= j; ++i)
      r1(i, j) = rnd(i, j) + (i == j ? 2.0 : 0.0);
  auto a2_0 = Matrix<double>::random(b, b, 1001 + ib);
  Matrix<double> r1w = r1, a2 = a2_0;
  Matrix<double> t(b, b);
  tsqrt_ib<double>(r1w.view(), a2.view(), t.view(), ib);

  // Applying Q^T to the original stack must reproduce [R_new; 0].
  Matrix<double> c1 = r1, c2 = a2_0;
  tsmqr_ib<double>(a2.view(), t.view(), c1.view(), c2.view(), Trans::kTrans,
                   ib);
  for (index_t j = 0; j < b; ++j) {
    for (index_t i = 0; i <= j; ++i) EXPECT_NEAR(c1(i, j), r1w(i, j), 1e-9);
    for (index_t i = 0; i < b; ++i) EXPECT_NEAR(c2(i, j), 0.0, 1e-9);
  }
}

TEST_P(IbWidths, TsmqrIbRoundTrips) {
  const index_t b = 16;
  const index_t ib = GetParam();
  Matrix<double> r1(b, b);
  for (index_t j = 0; j < b; ++j)
    for (index_t i = 0; i <= j; ++i) r1(i, j) = 1.0 + i + 2 * j;
  auto v2 = Matrix<double>::random(b, b, 1100 + ib);
  Matrix<double> t(b, b);
  tsqrt_ib<double>(r1.view(), v2.view(), t.view(), ib);
  auto c1_0 = Matrix<double>::random(b, b, 1101 + ib);
  auto c2_0 = Matrix<double>::random(b, b, 1102 + ib);
  Matrix<double> c1 = c1_0, c2 = c2_0;
  tsmqr_ib<double>(v2.view(), t.view(), c1.view(), c2.view(), Trans::kTrans,
                   ib);
  tsmqr_ib<double>(v2.view(), t.view(), c1.view(), c2.view(),
                   Trans::kNoTrans, ib);
  for (index_t j = 0; j < b; ++j)
    for (index_t i = 0; i < b; ++i) {
      EXPECT_NEAR(c1(i, j), c1_0(i, j), 1e-9);
      EXPECT_NEAR(c2(i, j), c2_0(i, j), 1e-9);
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, IbWidths,
                         ::testing::Values(1, 2, 3, 4, 8, 100 /*>=b*/));

TEST(KernelsIb, PreservesDiagonalTileVStorage) {
  // The blocked TSQRT must also leave the geqrt reflectors under R intact.
  const index_t b = 16, ib = 4;
  auto top = Matrix<double>::random(b, b, 42);
  Matrix<double> tg(b, b);
  geqrt<double>(top.view(), tg.view());
  Matrix<double> below(b, b);
  for (index_t j = 0; j < b; ++j)
    for (index_t i = j + 1; i < b; ++i) below(i, j) = top(i, j);
  auto a2 = Matrix<double>::random(b, b, 43);
  Matrix<double> t(b, b);
  tsqrt_ib<double>(top.view(), a2.view(), t.view(), ib);
  for (index_t j = 0; j < b; ++j)
    for (index_t i = j + 1; i < b; ++i) EXPECT_EQ(top(i, j), below(i, j));
}

TEST(KernelsIb, FullTiledFactorizationWithInnerBlocking) {
  const int n = 48, b = 16, ib = 4;
  auto a = Matrix<double>::random(n, n, 77);
  typename core::TiledQrFactorization<double>::Options opts;
  opts.inner_block = ib;
  for (auto elim : {dag::Elimination::kTs, dag::Elimination::kTt}) {
    opts.elim = elim;
    auto f = core::TiledQrFactorization<double>::factor(a, b, opts);
    EXPECT_EQ(f.inner_block(), ib);
    auto q = f.form_q();
    EXPECT_LT(orthogonality_residual<double>(q.view()),
              residual_tolerance<double>(n));
    auto r = f.r();
    Matrix<double> r_full(n, n);
    for (index_t j = 0; j < n; ++j)
      for (index_t i = 0; i <= j; ++i) r_full(i, j) = r(i, j);
    EXPECT_LT(
        reconstruction_residual<double>(a.view(), q.view(), r_full.view()),
        residual_tolerance<double>(n));
  }
}

TEST(KernelsIb, BlockedSolveMatchesUnblocked) {
  const int n = 32, b = 16;
  auto a = Matrix<double>::random(n, n, 88);
  for (index_t i = 0; i < n; ++i) a(i, i) += 5.0;
  auto rhs = Matrix<double>::random(n, 1, 89);
  typename core::TiledQrFactorization<double>::Options plain, blocked;
  blocked.inner_block = 4;
  auto xp = core::TiledQrFactorization<double>::factor(a, b, plain).solve(rhs);
  auto xb =
      core::TiledQrFactorization<double>::factor(a, b, blocked).solve(rhs);
  for (index_t i = 0; i < n; ++i) EXPECT_NEAR(xb(i, 0), xp(i, 0), 1e-10);
}

TEST(KernelsIb, IbZeroFallsBackToUnblocked) {
  const index_t b = 12;
  auto a0 = Matrix<double>::random(b, b, 90);
  Matrix<double> a1 = a0, a2 = a0;
  Matrix<double> t1(b, b), t2(b, b);
  geqrt<double>(a1.view(), t1.view());
  geqrt_ib<double>(a2.view(), t2.view(), 0);
  for (index_t j = 0; j < b; ++j)
    for (index_t i = 0; i < b; ++i) {
      EXPECT_EQ(a1(i, j), a2(i, j));
      EXPECT_EQ(t1(i, j), t2(i, j));
    }
}

}  // namespace
}  // namespace tqr::la
