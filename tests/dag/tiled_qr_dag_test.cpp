#include "dag/tiled_qr_dag.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.hpp"
#include "dag/task_accesses.hpp"
#include "la/flops.hpp"

namespace tqr::dag {
namespace {

TEST(TiledQrDag, SingleTileIsOneGeqrt) {
  TaskGraph g = build_tiled_qr_graph(1, 1, Elimination::kTs);
  ASSERT_EQ(g.size(), 1u);
  EXPECT_EQ(g.task(0).op, Op::kGeqrt);
}

class GridSizes
    : public ::testing::TestWithParam<std::tuple<int, int, Elimination>> {};

TEST_P(GridSizes, TaskCountMatchesClosedForm) {
  const auto [mt, nt, elim] = GetParam();
  TaskGraph g = build_tiled_qr_graph(mt, nt, elim);
  const StepCounts total = total_step_counts(mt, nt, elim);
  const auto counts = g.step_counts();
  EXPECT_EQ(counts[0], total.triangulation);
  EXPECT_EQ(counts[1], total.elimination);
  EXPECT_EQ(counts[2], total.update_triangulation);
  EXPECT_EQ(counts[3], total.update_elimination);
}

TEST_P(GridSizes, GraphIsValidDag) {
  const auto [mt, nt, elim] = GetParam();
  TaskGraph g = build_tiled_qr_graph(mt, nt, elim);
  EXPECT_TRUE(g.validate());
}

TEST_P(GridSizes, ExactlyMinMtNtRootPanels) {
  const auto [mt, nt, elim] = GetParam();
  TaskGraph g = build_tiled_qr_graph(mt, nt, elim);
  int max_panel = -1;
  for (const Task& t : g.tasks()) max_panel = std::max(max_panel, int(t.k));
  EXPECT_EQ(max_panel + 1, std::min(mt, nt));
}

INSTANTIATE_TEST_SUITE_P(
    Grids, GridSizes,
    ::testing::Combine(::testing::Values(1, 2, 3, 5, 8),
                       ::testing::Values(1, 2, 3, 5, 8),
                       ::testing::Values(Elimination::kTs, Elimination::kTt,
                                         Elimination::kHier)));

TEST(TiledQrDag, TsPanelCounts) {
  const StepCounts c = panel_step_counts(5, 4, Elimination::kTs);
  EXPECT_EQ(c.triangulation, 1);
  EXPECT_EQ(c.elimination, 4);
  EXPECT_EQ(c.update_triangulation, 3);
  EXPECT_EQ(c.update_elimination, 12);
}

TEST(TiledQrDag, TtPanelCountsMatchPaperTable1Shape) {
  // Table I: T = M, E = M, UT = M(N-1), UE = M(N-1) — the TT variant up to
  // the M vs M-1 elimination/update distinction.
  const std::int64_t m = 6, n = 5;
  const StepCounts ours = panel_step_counts(m, n, Elimination::kTt);
  const StepCounts paper = paper_table1_counts(m, n);
  EXPECT_EQ(ours.triangulation, paper.triangulation);
  EXPECT_EQ(ours.elimination, paper.elimination - 1);
  EXPECT_EQ(ours.update_triangulation, paper.update_triangulation);
  EXPECT_EQ(ours.update_elimination, (m - 1) * (n - 1));
}

TEST(TiledQrDag, TtHasLowerCriticalPathThanTs) {
  // The binary elimination tree shortens the per-panel chain from O(M) to
  // O(log M). Weighted by kernel flops (TT kernels are also cheaper), the
  // critical path must be clearly smaller on a tall grid.
  const auto flops = [](const Task& t) {
    switch (t.op) {
      case Op::kGeqrt:
        return la::flops_geqrt(16);
      case Op::kUnmqr:
        return la::flops_unmqr(16);
      case Op::kTsqrt:
        return la::flops_tsqrt(16);
      case Op::kTsmqr:
        return la::flops_tsmqr(16);
      case Op::kTtqrt:
        return la::flops_ttqrt(16);
      case Op::kTtmqr:
        return la::flops_ttmqr(16);
      default:
        return 0.0;
    }
  };
  TaskGraph ts = build_tiled_qr_graph(32, 4, Elimination::kTs);
  TaskGraph tt = build_tiled_qr_graph(32, 4, Elimination::kTt);
  EXPECT_LT(tt.critical_path(flops), 0.8 * ts.critical_path(flops));
}

TEST(TiledQrDag, TsHasFewerTasksThanTt) {
  TaskGraph ts = build_tiled_qr_graph(8, 8, Elimination::kTs);
  TaskGraph tt = build_tiled_qr_graph(8, 8, Elimination::kTt);
  EXPECT_LT(ts.size(), tt.size());
}

TEST(TiledQrDag, FirstTaskIsPanelZeroGeqrt) {
  for (Elimination e : {Elimination::kTs, Elimination::kTt}) {
    TaskGraph g = build_tiled_qr_graph(4, 4, e);
    EXPECT_EQ(g.task(0).op, Op::kGeqrt);
    EXPECT_EQ(g.task(0).k, 0);
    EXPECT_EQ(g.indegree(0), 0);
  }
}

TEST(TiledQrDag, UnmqrOverlapsEliminationChain) {
  // The UNMQR of panel 0 reads only the V part of the diagonal tile, so it
  // must NOT depend on any TSQRT (which mutates only the R part).
  TaskGraph g = build_tiled_qr_graph(3, 3, Elimination::kTs);
  for (task_id t = 0; t < static_cast<task_id>(g.size()); ++t) {
    if (g.task(t).op != Op::kUnmqr || g.task(t).k != 0) continue;
    for (auto it = g.predecessors_begin(t); it != g.predecessors_end(t); ++it)
      EXPECT_NE(g.task(*it).op, Op::kTsqrt)
          << "UNMQR should not wait on TSQRT";
  }
}

TEST(TiledQrDag, RectangularGrids) {
  // Tall and wide grids build valid graphs with the right panel count.
  TaskGraph tall = build_tiled_qr_graph(10, 3, Elimination::kTt);
  TaskGraph wide = build_tiled_qr_graph(3, 10, Elimination::kTs);
  EXPECT_TRUE(tall.validate());
  EXPECT_TRUE(wide.validate());
}

TEST(HierDag, GroupMapIsContiguousAndBalanced) {
  // hier_group_of partitions [0, mt) into `groups` contiguous,
  // non-decreasing chunks covering every group exactly once.
  const std::int32_t mt = 13, groups = 4;
  std::int32_t prev = 0;
  std::vector<int> seen(groups, 0);
  for (std::int32_t i = 0; i < mt; ++i) {
    const std::int32_t g = hier_group_of(i, mt, groups);
    ASSERT_GE(g, prev);
    ASSERT_LT(g, groups);
    ASSERT_LE(g - prev, 1);  // no group skipped
    seen[g] = 1;
    prev = g;
  }
  for (int g = 0; g < groups; ++g) EXPECT_EQ(seen[g], 1);
  EXPECT_EQ(hier_group_of(0, mt, groups), 0);
  EXPECT_EQ(hier_group_of(mt - 1, mt, groups), groups - 1);
}

TEST(HierDag, PanelStructureTwoGroups) {
  // mt=8, one tile column, 2 groups: flat folds onto each group head
  // (rows 0 and 4), then one binary combine across the heads.
  TaskGraph g = build_tiled_qr_graph(8, 1, Elimination::kHier, 2);
  std::vector<std::pair<int, int>> combines;
  for (const Task& t : g.tasks())
    if (t.op == Op::kTtqrt) combines.emplace_back(t.p, t.i);
  const std::vector<std::pair<int, int>> expected = {
      {0, 1}, {0, 2}, {0, 3}, {4, 5}, {4, 6}, {4, 7}, {0, 4}};
  EXPECT_EQ(combines, expected);
  EXPECT_TRUE(g.validate());
}

TEST(HierDag, OneGroupDegeneratesToTtFlat) {
  TaskGraph hier = build_tiled_qr_graph(6, 3, Elimination::kHier, 1);
  TaskGraph flat = build_tiled_qr_graph(6, 3, Elimination::kTtFlat);
  ASSERT_EQ(hier.size(), flat.size());
  for (std::size_t t = 0; t < hier.size(); ++t) {
    EXPECT_EQ(hier.task(t).op, flat.task(t).op);
    EXPECT_EQ(hier.task(t).p, flat.task(t).p);
    EXPECT_EQ(hier.task(t).i, flat.task(t).i);
  }
}

TEST(HierDag, GroupCountIsClampedToValidRange) {
  // groups > mt and groups <= 0 both clamp instead of throwing: 0 means
  // "pick from the platform" upstream and lands at 1 here.
  EXPECT_TRUE(build_tiled_qr_graph(6, 2, Elimination::kHier, 100).validate());
  TaskGraph zero = build_tiled_qr_graph(6, 2, Elimination::kHier, 0);
  TaskGraph one = build_tiled_qr_graph(6, 2, Elimination::kHier, 1);
  ASSERT_EQ(zero.size(), one.size());
  for (std::size_t t = 0; t < zero.size(); ++t)
    EXPECT_EQ(zero.task(t).p, one.task(t).p);
}

TEST(HierDag, CriticalPathBeatsFlatTsChainOnTallGrids) {
  // The point of the hierarchy on tall-skinny grids: group folds run in
  // parallel, so the flops-weighted critical path is well below the flat
  // TS chain's O(M) reflector chain.
  const auto flops = [](const Task& t) {
    switch (t.op) {
      case Op::kGeqrt: return la::flops_geqrt(16);
      case Op::kUnmqr: return la::flops_unmqr(16);
      case Op::kTsqrt: return la::flops_tsqrt(16);
      case Op::kTsmqr: return la::flops_tsmqr(16);
      case Op::kTtqrt: return la::flops_ttqrt(16);
      case Op::kTtmqr: return la::flops_ttmqr(16);
      default: return 0.0;
    }
  };
  TaskGraph ts = build_tiled_qr_graph(32, 2, Elimination::kTs);
  TaskGraph hier = build_tiled_qr_graph(32, 2, Elimination::kHier, 4);
  EXPECT_LT(hier.critical_path(flops), 0.8 * ts.critical_path(flops));
}

TEST(TiledQrDag, RejectsEmptyGrid) {
  EXPECT_THROW(build_tiled_qr_graph(0, 3, Elimination::kTs),
               tqr::InvalidArgument);
}

TEST(TaskAccesses, GeqrtTouchesTileAndFactor) {
  Task t;
  t.op = Op::kGeqrt;
  t.k = 1;
  t.i = 2;
  TileAccess acc[5];
  const int n = tile_accesses(t, acc);
  ASSERT_EQ(n, 2);
  EXPECT_EQ(acc[0].plane, Plane::kA);
  EXPECT_TRUE(acc[0].read);
  EXPECT_TRUE(acc[0].write);
  EXPECT_EQ(acc[1].plane, Plane::kTg);
  EXPECT_FALSE(acc[1].read);
}

TEST(TaskAccesses, TsmqrReadsReflectorWritesTargets) {
  Task t;
  t.op = Op::kTsmqr;
  t.k = 0;
  t.i = 2;
  t.p = 0;
  t.j = 3;
  TileAccess acc[5];
  const int n = tile_accesses(t, acc);
  ASSERT_EQ(n, 4);
  // Reflector tile read-only.
  EXPECT_TRUE(acc[0].read);
  EXPECT_FALSE(acc[0].write);
  // Both target tiles read-write.
  EXPECT_TRUE(acc[2].write);
  EXPECT_TRUE(acc[3].write);
  EXPECT_EQ(acc[3].i, 2);
  EXPECT_EQ(acc[3].j, 3);
}

}  // namespace
}  // namespace tqr::dag
