#include "dag/graph.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace tqr::dag {
namespace {

using Builder = TaskGraph::Builder;
using Mode = Builder::Mode;

Task dummy(int k) {
  Task t;
  t.op = Op::kGeqrt;
  t.k = static_cast<std::int16_t>(k);
  return t;
}

TEST(GraphBuilder, RawDependency) {
  Builder b(2, 2);
  const auto w = b.add_task(dummy(0), {{b.upper(0, 0), Mode::kWrite}});
  const auto r = b.add_task(dummy(1), {{b.upper(0, 0), Mode::kRead}});
  TaskGraph g = std::move(b).build();
  EXPECT_EQ(g.indegree(w), 0);
  EXPECT_EQ(g.indegree(r), 1);
  EXPECT_EQ(*g.predecessors_begin(r), w);
}

TEST(GraphBuilder, ConcurrentReadersShareOneWriter) {
  Builder b(2, 2);
  const auto w = b.add_task(dummy(0), {{b.upper(0, 0), Mode::kWrite}});
  const auto r1 = b.add_task(dummy(1), {{b.upper(0, 0), Mode::kRead}});
  const auto r2 = b.add_task(dummy(2), {{b.upper(0, 0), Mode::kRead}});
  TaskGraph g = std::move(b).build();
  // Readers depend only on the writer, not on each other.
  EXPECT_EQ(g.indegree(r1), 1);
  EXPECT_EQ(g.indegree(r2), 1);
  EXPECT_EQ(g.out_degree(w), 2);
}

TEST(GraphBuilder, WarDependency) {
  Builder b(2, 2);
  b.add_task(dummy(0), {{b.upper(0, 0), Mode::kWrite}});
  const auto r = b.add_task(dummy(1), {{b.upper(0, 0), Mode::kRead}});
  const auto w2 = b.add_task(dummy(2), {{b.upper(0, 0), Mode::kWrite}});
  TaskGraph g = std::move(b).build();
  // The second writer must wait for the reader (and transitively the first
  // writer).
  bool depends_on_reader = false;
  for (auto it = g.predecessors_begin(w2); it != g.predecessors_end(w2); ++it)
    if (*it == r) depends_on_reader = true;
  EXPECT_TRUE(depends_on_reader);
}

TEST(GraphBuilder, WawDependency) {
  Builder b(2, 2);
  const auto w1 = b.add_task(dummy(0), {{b.upper(0, 0), Mode::kWrite}});
  const auto w2 = b.add_task(dummy(1), {{b.upper(0, 0), Mode::kWrite}});
  TaskGraph g = std::move(b).build();
  EXPECT_EQ(g.indegree(w2), 1);
  EXPECT_EQ(*g.predecessors_begin(w2), w1);
}

TEST(GraphBuilder, ReadWriteSelfDoesNotSelfDepend) {
  Builder b(2, 2);
  const auto t = b.add_task(dummy(0), {{b.upper(1, 1), Mode::kReadWrite}});
  TaskGraph g = std::move(b).build();
  EXPECT_EQ(g.indegree(t), 0);
}

TEST(GraphBuilder, RwChainsSerialize) {
  Builder b(2, 2);
  const auto a = b.add_task(dummy(0), {{b.upper(0, 0), Mode::kReadWrite}});
  const auto c = b.add_task(dummy(1), {{b.upper(0, 0), Mode::kReadWrite}});
  const auto d = b.add_task(dummy(2), {{b.upper(0, 0), Mode::kReadWrite}});
  TaskGraph g = std::move(b).build();
  EXPECT_EQ(g.indegree(a), 0);
  EXPECT_EQ(*g.predecessors_begin(c), a);
  EXPECT_EQ(*g.predecessors_begin(d), c);
}

TEST(GraphBuilder, DistinctResourcesIndependent) {
  Builder b(2, 2);
  b.add_task(dummy(0), {{b.upper(0, 0), Mode::kWrite}});
  const auto t2 = b.add_task(dummy(1), {{b.lower(0, 0), Mode::kWrite}});
  const auto t3 = b.add_task(dummy(2), {{b.t_geqrt(0, 0), Mode::kWrite}});
  const auto t4 = b.add_task(dummy(3), {{b.t_elim(0, 0), Mode::kWrite}});
  TaskGraph g = std::move(b).build();
  EXPECT_EQ(g.indegree(t2), 0);
  EXPECT_EQ(g.indegree(t3), 0);
  EXPECT_EQ(g.indegree(t4), 0);
}

TEST(GraphBuilder, DuplicateDependenciesDeduplicated) {
  Builder b(2, 2);
  const auto w = b.add_task(dummy(0), {{b.upper(0, 0), Mode::kWrite},
                                       {b.lower(0, 0), Mode::kWrite}});
  const auto r = b.add_task(dummy(1), {{b.upper(0, 0), Mode::kRead},
                                       {b.lower(0, 0), Mode::kRead}});
  TaskGraph g = std::move(b).build();
  EXPECT_EQ(g.indegree(r), 1);
  EXPECT_EQ(g.out_degree(w), 1);
}

TEST(TaskGraph, ValidateAcceptsWellFormedGraph) {
  Builder b(2, 2);
  b.add_task(dummy(0), {{b.upper(0, 0), Mode::kWrite}});
  b.add_task(dummy(1), {{b.upper(0, 0), Mode::kReadWrite}});
  b.add_task(dummy(2), {{b.upper(0, 0), Mode::kRead}});
  TaskGraph g = std::move(b).build();
  EXPECT_TRUE(g.validate());
}

TEST(TaskGraph, CriticalPathOfChain) {
  Builder b(2, 2);
  for (int i = 0; i < 5; ++i)
    b.add_task(dummy(i), {{b.upper(0, 0), Mode::kReadWrite}});
  TaskGraph g = std::move(b).build();
  EXPECT_DOUBLE_EQ(g.critical_path([](const Task&) { return 2.0; }), 10.0);
}

TEST(TaskGraph, CriticalPathOfIndependentTasks) {
  Builder b(2, 2);
  b.add_task(dummy(0), {{b.upper(0, 0), Mode::kWrite}});
  b.add_task(dummy(1), {{b.upper(0, 1), Mode::kWrite}});
  b.add_task(dummy(2), {{b.upper(1, 0), Mode::kWrite}});
  TaskGraph g = std::move(b).build();
  EXPECT_DOUBLE_EQ(g.critical_path([](const Task&) { return 3.0; }), 3.0);
}

TEST(TaskGraph, DotExportContainsNodesAndEdges) {
  Builder b(2, 2);
  b.add_task(dummy(0), {{b.upper(0, 0), Mode::kWrite}});
  b.add_task(dummy(1), {{b.upper(0, 0), Mode::kRead}});
  TaskGraph g = std::move(b).build();
  const std::string dot = g.to_dot();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("t0 -> t1"), std::string::npos);
}

TEST(TaskGraph, DotExportRejectsHugeGraphs) {
  Builder b(2, 2);
  for (int i = 0; i < 10; ++i)
    b.add_task(dummy(i), {{b.upper(0, 0), Mode::kReadWrite}});
  TaskGraph g = std::move(b).build();
  EXPECT_THROW(g.to_dot(5), tqr::InvalidArgument);
}

TEST(TaskToString, FormatsCoordinates) {
  Task t;
  t.op = Op::kTsmqr;
  t.k = 1;
  t.i = 3;
  t.p = 1;
  t.j = 4;
  const std::string s = to_string(t);
  EXPECT_NE(s.find("TSMQR"), std::string::npos);
  EXPECT_NE(s.find("i=3"), std::string::npos);
  EXPECT_NE(s.find("j=4"), std::string::npos);
}

TEST(StepOf, MapsOpsToPaperSteps) {
  EXPECT_EQ(step_of(Op::kGeqrt), Step::kTriangulation);
  EXPECT_EQ(step_of(Op::kTsqrt), Step::kElimination);
  EXPECT_EQ(step_of(Op::kTtqrt), Step::kElimination);
  EXPECT_EQ(step_of(Op::kUnmqr), Step::kUpdateTriangulation);
  EXPECT_EQ(step_of(Op::kTsmqr), Step::kUpdateElimination);
  EXPECT_EQ(step_of(Op::kTtmqr), Step::kUpdateElimination);
}

}  // namespace
}  // namespace tqr::dag
