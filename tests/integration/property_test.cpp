// Property sweeps: the tiled QR invariants must hold across matrix classes,
// elimination strategies, tile sizes, and schedules — not just on uniform
// random inputs.
#include <gtest/gtest.h>

#include "core/simulate.hpp"
#include "core/tiled_qr.hpp"
#include "la/checks.hpp"
#include "la/generators.hpp"
#include "sim/platform.hpp"

namespace tqr::core {
namespace {

using la::index_t;
using la::Matrix;

enum class MatrixClass {
  kUniform,
  kOrthogonal,
  kIllConditioned,
  kGraded,
  kRankDeficient,
};

const char* class_name(MatrixClass c) {
  switch (c) {
    case MatrixClass::kUniform:
      return "uniform";
    case MatrixClass::kOrthogonal:
      return "orthogonal";
    case MatrixClass::kIllConditioned:
      return "ill-conditioned";
    case MatrixClass::kGraded:
      return "graded";
    case MatrixClass::kRankDeficient:
      return "rank-deficient";
  }
  return "?";
}

Matrix<double> make_matrix(MatrixClass c, index_t n, std::uint64_t seed) {
  switch (c) {
    case MatrixClass::kUniform:
      return Matrix<double>::random(n, n, seed);
    case MatrixClass::kOrthogonal:
      return la::random_orthogonal<double>(n, seed);
    case MatrixClass::kIllConditioned:
      return la::random_with_condition<double>(n, 1e10, seed);
    case MatrixClass::kGraded:
      return la::graded_rows<double>(n, n, 8.0, seed);
    case MatrixClass::kRankDeficient:
      return la::random_rank_deficient<double>(n, n, n / 2, seed);
  }
  return Matrix<double>(n, n);
}

struct Sweep {
  MatrixClass cls;
  int n;
  int b;
  dag::Elimination elim;
};

void PrintTo(const Sweep& s, std::ostream* os) {
  *os << class_name(s.cls) << "/" << s.n << "/b" << s.b << "/"
      << dag::elimination_name(s.elim);
}

class FactorizationProperties : public ::testing::TestWithParam<Sweep> {};

TEST_P(FactorizationProperties, BackwardStableFactorization) {
  const Sweep s = GetParam();
  auto a = make_matrix(s.cls, s.n, 100 + s.n * 13 + s.b);
  typename TiledQrFactorization<double>::Options opts;
  opts.elim = s.elim;
  auto f = TiledQrFactorization<double>::factor(a, s.b, opts);

  // Invariant 1: Q orthogonal to machine precision regardless of input.
  auto q = f.form_q();
  EXPECT_LT(la::orthogonality_residual<double>(q.view()),
            la::residual_tolerance<double>(s.n));

  // Invariant 2: backward error ||A - QR|| / ||A|| at machine precision
  // (vacuous only for the zero matrix, which this sweep never produces).
  auto r = f.r();
  Matrix<double> r_full(s.n, s.n);
  for (index_t j = 0; j < s.n; ++j)
    for (index_t i = 0; i <= j; ++i) r_full(i, j) = r(i, j);
  EXPECT_LT(la::reconstruction_residual<double>(a.view(), q.view(),
                                                r_full.view()),
            la::residual_tolerance<double>(s.n));

  // Invariant 3: R strictly upper triangular in storage.
  EXPECT_LT(la::lower_triangle_residual<double>(r.view()), 1e-12);
}

std::vector<Sweep> all_sweeps() {
  std::vector<Sweep> sweeps;
  for (MatrixClass cls :
       {MatrixClass::kUniform, MatrixClass::kOrthogonal,
        MatrixClass::kIllConditioned, MatrixClass::kGraded,
        MatrixClass::kRankDeficient}) {
    for (dag::Elimination elim :
         {dag::Elimination::kTs, dag::Elimination::kTt,
          dag::Elimination::kTtFlat}) {
      sweeps.push_back(Sweep{cls, 32, 8, elim});
    }
    sweeps.push_back(Sweep{cls, 48, 16, dag::Elimination::kTt});
    sweeps.push_back(Sweep{cls, 24, 4, dag::Elimination::kTt});
  }
  return sweeps;
}

INSTANTIATE_TEST_SUITE_P(MatrixClasses, FactorizationProperties,
                         ::testing::ValuesIn(all_sweeps()));

// --- simulator properties -----------------------------------------------------

class SimProperties : public ::testing::TestWithParam<int> {};

TEST_P(SimProperties, MoreSlotsNeverSlower) {
  const int nt = GetParam();
  dag::TaskGraph g = dag::build_tiled_qr_graph(nt, nt, dag::Elimination::kTt);
  std::vector<std::uint8_t> assign(g.size(), 0);
  double prev = 1e300;
  for (int slots : {1, 2, 8, 64}) {
    sim::Platform p;
    sim::DeviceSpec d = sim::make_gtx580();
    d.slots = slots;
    p.devices.push_back(d);
    const auto r = sim::simulate(g, assign, p, nt, nt, sim::SimOptions{});
    EXPECT_LE(r.makespan_s, prev + 1e-12) << "slots=" << slots;
    prev = r.makespan_s;
  }
}

TEST_P(SimProperties, FasterBusNeverSlower) {
  const int nt = GetParam();
  dag::TaskGraph g = dag::build_tiled_qr_graph(nt, nt, dag::Elimination::kTt);
  const sim::Platform base = sim::paper_platform();
  PlanConfig pc;
  pc.tile_size = 16;
  pc.count_policy = CountPolicy::kAll;
  Plan plan(base, nt, nt, pc);
  double prev = 1e300;
  for (double bw : {0.5, 2.0, 8.0, 64.0}) {
    sim::Platform p = base;
    p.comm.gbytes_per_s = bw;
    const auto r = simulate_on_graph(g, plan, p);
    EXPECT_LE(r.makespan_s, prev + 1e-12) << "bw=" << bw;
    prev = r.makespan_s;
  }
}

TEST_P(SimProperties, MakespanBoundedByWorkAndCriticalPath) {
  const int nt = GetParam();
  dag::TaskGraph g = dag::build_tiled_qr_graph(nt, nt, dag::Elimination::kTt);
  sim::Platform p;
  p.devices.push_back(sim::make_gtx680());
  p.comm = sim::CommModel{0, 1e9, true};
  std::vector<std::uint8_t> assign(g.size(), 0);
  const auto r = sim::simulate(g, assign, p, nt, nt, sim::SimOptions{});
  const auto weight = [&](const dag::Task& t) {
    return p.devices[0].kernel_time_s(t.op, 16);
  };
  double serial = 0;
  for (const auto& t : g.tasks()) serial += weight(t);
  EXPECT_GE(r.makespan_s, g.critical_path(weight) - 1e-12);
  EXPECT_LE(r.makespan_s, serial + 1e-9);
  EXPECT_NEAR(r.total_busy_s(), serial, serial * 1e-9);
}

INSTANTIATE_TEST_SUITE_P(GridSizes, SimProperties,
                         ::testing::Values(4, 8, 12));

// --- schedule-invariance of numerics -------------------------------------------

TEST(ScheduleInvariance, AllEliminationVariantsSolveIdentically) {
  const int n = 40, b = 8;
  auto a = la::random_with_condition<double>(n, 1e4, 55);
  auto x_true = Matrix<double>::random(n, 1, 56);
  Matrix<double> rhs(n, 1);
  la::gemm<double>(la::Trans::kNoTrans, la::Trans::kNoTrans, 1.0, a.view(),
                   x_true.view(), 0.0, rhs.view());
  for (dag::Elimination elim :
       {dag::Elimination::kTs, dag::Elimination::kTt,
        dag::Elimination::kTtFlat}) {
    typename TiledQrFactorization<double>::Options opts;
    opts.elim = elim;
    auto x = TiledQrFactorization<double>::factor(a, b, opts).solve(rhs);
    for (index_t i = 0; i < n; ++i)
      EXPECT_NEAR(x(i, 0), x_true(i, 0), 1e-8)
          << dag::elimination_name(elim);
  }
}

TEST(ScheduleInvariance, ThreadCountDoesNotChangeFactors) {
  const int n = 48, b = 8;
  auto a = la::graded_rows<double>(n, n, 4.0, 57);
  const sim::Platform platform = sim::paper_platform();
  PlanConfig pc;
  pc.tile_size = b;
  Plan plan(platform, n / b, n / b, pc);

  la::Matrix<double> reference;
  for (int threads : {1, 2, 4}) {
    typename TiledQrFactorization<double>::Options opts;
    opts.plan = &plan;
    opts.threads_per_device = threads;
    auto f = TiledQrFactorization<double>::factor(a, b, opts);
    auto r = f.r();
    if (threads == 1) {
      reference = r;
      continue;
    }
    for (index_t j = 0; j < n; ++j)
      for (index_t i = 0; i <= j; ++i)
        EXPECT_EQ(r(i, j), reference(i, j)) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace tqr::core
