// Randomized consistency fuzzing: for random task graphs over random tile
// accesses, the threaded executor and the discrete-event simulator must both
// respect every dependence the builder inferred, and a sequential replay of
// shared-counter increments must match the parallel one. This guards the
// dependence analysis and both schedulers against each other.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>

#include "common/rng.hpp"
#include "dag/graph.hpp"
#include "runtime/dag_executor.hpp"
#include "sim/des.hpp"

namespace tqr {
namespace {

using dag::Task;
using dag::task_id;
using Builder = dag::TaskGraph::Builder;
using Mode = Builder::Mode;

/// Builds a random graph over a small tile grid; returns the graph plus the
/// access list per task so the test can replay writes.
struct FuzzCase {
  dag::TaskGraph graph;
  // Per task: list of (resource index 0..R-1, writes?).
  std::vector<std::vector<std::pair<int, bool>>> accesses;
  int resources;
};

FuzzCase make_case(std::uint64_t seed, int n_tasks) {
  const int grid = 3;
  Builder b(grid, grid);
  Rng rng(seed);
  FuzzCase fc{dag::TaskGraph{}, {}, 4 * grid * grid};
  std::vector<std::vector<std::pair<int, bool>>> accs;
  for (int t = 0; t < n_tasks; ++t) {
    // Coordinates must stay inside the tile grid: the simulator's transfer
    // model dereferences the tiles named by (k, i, p, j).
    Task task;
    task.op = static_cast<dag::Op>(rng.next_below(6));
    task.k = static_cast<std::int16_t>(rng.next_below(grid));
    task.i = static_cast<std::int16_t>(rng.next_below(grid));
    task.p = static_cast<std::int16_t>(rng.next_below(grid));
    task.j = static_cast<std::int16_t>(rng.next_below(grid));
    const int n_acc = 1 + static_cast<int>(rng.next_below(3));
    std::vector<Builder::Access> access;
    std::vector<std::pair<int, bool>> recorded;
    for (int a = 0; a < n_acc; ++a) {
      const int i = static_cast<int>(rng.next_below(grid));
      const int j = static_cast<int>(rng.next_below(grid));
      const int kind = static_cast<int>(rng.next_below(4));
      int res = 0;
      switch (kind) {
        case 0: res = b.upper(i, j); break;
        case 1: res = b.lower(i, j); break;
        case 2: res = b.t_geqrt(i, j); break;
        default: res = b.t_elim(i, j); break;
      }
      const int mode = static_cast<int>(rng.next_below(3));
      const Mode m = mode == 0 ? Mode::kRead
                               : (mode == 1 ? Mode::kWrite : Mode::kReadWrite);
      access.push_back({res, m});
      recorded.push_back({res, m != Mode::kRead});
    }
    b.add_task(task, {access.begin(), access.end()});
    accs.push_back(std::move(recorded));
  }
  fc.graph = std::move(b).build();
  fc.accesses = std::move(accs);
  return fc;
}

class ConsistencyFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ConsistencyFuzz, GraphIsValidTopologicalDag) {
  const FuzzCase fc = make_case(1000 + GetParam(), 60);
  EXPECT_TRUE(fc.graph.validate());
}

TEST_P(ConsistencyFuzz, ParallelWriteHistoryMatchesSequential) {
  // Each write appends the task id to its resource's history. Dependences
  // must force every pair of conflicting writes into the same order as the
  // sequential replay.
  const FuzzCase fc = make_case(2000 + GetParam(), 80);

  std::vector<std::vector<int>> sequential(fc.resources);
  for (task_id t = 0; t < static_cast<task_id>(fc.graph.size()); ++t)
    for (const auto& [res, writes] : fc.accesses[t])
      if (writes) sequential[res].push_back(t);

  for (int trial = 0; trial < 3; ++trial) {
    std::vector<std::vector<int>> parallel(fc.resources);
    std::mutex m;
    runtime::DagExecutor::Options opts;
    opts.num_devices = 3;
    opts.threads_per_device = {2, 2, 2};
    runtime::DagExecutor::run(
        fc.graph, [](task_id t, const Task&) { return t % 3; },
        [&](task_id t, const Task&, int) {
          std::lock_guard<std::mutex> lock(m);
          for (const auto& [res, writes] : fc.accesses[t])
            if (writes) parallel[res].push_back(t);
        },
        opts);
    EXPECT_EQ(parallel, sequential) << "trial " << trial;
  }
}

TEST_P(ConsistencyFuzz, SimulatorRespectsEveryDependence) {
  const FuzzCase fc = make_case(3000 + GetParam(), 80);
  sim::Platform p;
  for (int d = 0; d < 3; ++d) {
    sim::DeviceSpec dev = sim::make_gtx580();
    dev.slots = 2;
    p.devices.push_back(dev);
  }
  std::vector<std::uint8_t> assign(fc.graph.size());
  Rng rng(4000 + GetParam());
  for (auto& a : assign) a = static_cast<std::uint8_t>(rng.next_below(3));
  runtime::Trace trace;
  sim::SimOptions opts;
  opts.trace = &trace;
  opts.time_jitter = 0.3;  // noise must not break ordering
  sim::simulate(fc.graph, assign, p, 3, 3, opts);
  std::vector<double> start(fc.graph.size()), end(fc.graph.size());
  for (const auto& e : trace.events()) {
    start[e.task] = e.start_s;
    end[e.task] = e.end_s;
  }
  for (task_id t = 0; t < static_cast<task_id>(fc.graph.size()); ++t)
    for (auto it = fc.graph.predecessors_begin(t);
         it != fc.graph.predecessors_end(t); ++it)
      EXPECT_GE(start[t], end[*it] - 1e-15)
          << "task " << t << " started before dep " << *it;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConsistencyFuzz, ::testing::Range(0, 8));

}  // namespace
}  // namespace tqr
