// End-to-end integration: plan -> graph -> (functional run + simulation),
// checking that the paper's qualitative claims hold on the simulated
// platform and that numerics survive the full pipeline.
#include <gtest/gtest.h>

#include "core/simulate.hpp"
#include "core/tiled_qr.hpp"
#include "la/checks.hpp"
#include "sim/platform.hpp"

namespace tqr::core {
namespace {

PlanConfig base_config(int b = 16) {
  PlanConfig c;
  c.tile_size = b;
  return c;
}

TEST(Integration, SimulatedAndFunctionalRunsShareTheSchedule) {
  // Build one plan; run it functionally (threads) and through the DES. The
  // task -> device routing must agree on every task.
  const int n = 64, b = 16;
  const sim::Platform platform = sim::paper_platform();
  PlanConfig pc = base_config(b);
  Plan plan(platform, n / b, n / b, pc);
  dag::TaskGraph graph = dag::build_tiled_qr_graph(n / b, n / b, pc.elim);

  runtime::Trace sim_trace;
  sim::SimOptions sopts;
  sopts.tile_size = b;
  sopts.trace = &sim_trace;
  const auto assign = plan.assignment(graph);
  sim::simulate(graph, assign, platform, n / b, n / b, sopts);

  runtime::Trace real_trace;
  auto a = la::Matrix<double>::random(n, n, 1);
  typename TiledQrFactorization<double>::Options fopts;
  fopts.plan = &plan;
  fopts.trace = &real_trace;
  TiledQrFactorization<double>::factor(a, b, fopts);

  ASSERT_EQ(sim_trace.events().size(), real_trace.events().size());
  // Match by task id: same device group decisions.
  std::vector<int> sim_dev(graph.size(), -1);
  for (const auto& e : sim_trace.events()) sim_dev[e.task] = e.device;
  for (const auto& e : real_trace.events()) {
    // Real trace records group index; map to device id via participants.
    EXPECT_EQ(plan.participants()[e.device], sim_dev[e.task]);
  }
}

TEST(Integration, SimulateTiledQrEndToEnd) {
  const SimRun run =
      simulate_tiled_qr(sim::paper_platform(), 640, 640, base_config());
  EXPECT_GT(run.result.makespan_s, 0);
  EXPECT_EQ(run.result.tasks,
            static_cast<std::int64_t>(
                dag::build_tiled_qr_graph(40, 40, dag::Elimination::kTt)
                    .size()));
  EXPECT_GT(run.result.comm_s, 0);
}

TEST(Integration, MoreGpusHelpLargeMatrices) {
  // Fig. 6 / Fig. 8 shape: at 3200^2 every added GPU reduces the makespan.
  PlanConfig pc = base_config();
  pc.count_policy = CountPolicy::kAll;
  double prev = 1e100;
  for (int gpus = 1; gpus <= 3; ++gpus) {
    const auto run = simulate_tiled_qr(sim::paper_platform_with_gpus(gpus),
                                       3200, 3200, pc);
    EXPECT_LT(run.result.makespan_s, prev) << gpus << " GPUs";
    prev = run.result.makespan_s;
  }
}

TEST(Integration, SingleGpuBeatsThreeOnTinyMatrices) {
  // Fig. 6(b): for small sizes the transfer overhead outweighs parallelism.
  PlanConfig one = base_config();
  one.count_policy = CountPolicy::kFixed;
  one.fixed_count = 1;
  PlanConfig three = base_config();
  three.count_policy = CountPolicy::kFixed;
  three.fixed_count = 3;
  const auto r1 = simulate_tiled_qr(sim::paper_platform(), 160, 160, one);
  const auto r3 = simulate_tiled_qr(sim::paper_platform(), 160, 160, three);
  EXPECT_LT(r1.result.makespan_s, r3.result.makespan_s);
}

TEST(Integration, CpuAsMainIsCatastrophic) {
  // Fig. 9: CPU-as-main is an order of magnitude slower than GTX580-as-main.
  PlanConfig ours = base_config();
  PlanConfig cpu = base_config();
  cpu.main_policy = MainPolicy::kFixed;
  cpu.fixed_main = 0;
  const auto r_ours = simulate_tiled_qr(sim::paper_platform(), 1280, 1280, ours);
  const auto r_cpu = simulate_tiled_qr(sim::paper_platform(), 1280, 1280, cpu);
  EXPECT_GT(r_cpu.result.makespan_s, 5.0 * r_ours.result.makespan_s);
}

TEST(Integration, GuideArrayBeatsEvenDistributionOnLargeMatrices) {
  // Fig. 10 shape.
  PlanConfig guide = base_config();
  PlanConfig even = base_config();
  even.dist_policy = DistPolicy::kEven;
  guide.count_policy = even.count_policy = CountPolicy::kFixed;
  guide.fixed_count = even.fixed_count = 3;
  const auto rg = simulate_tiled_qr(sim::paper_platform(), 2560, 2560, guide);
  const auto re = simulate_tiled_qr(sim::paper_platform(), 2560, 2560, even);
  EXPECT_LT(rg.result.makespan_s, re.result.makespan_s);
}

TEST(Integration, CommShareOfWorkShrinksWithMatrixSize) {
  // Fig. 5 shape: communication relative to computation decreases as
  // matrices grow (volume ~M per panel vs compute ~M^2 per panel).
  PlanConfig pc = base_config();
  pc.count_policy = CountPolicy::kAll;
  const auto small = simulate_tiled_qr(sim::paper_platform(), 320, 320, pc);
  const auto large = simulate_tiled_qr(sim::paper_platform(), 2560, 2560, pc);
  EXPECT_GT(small.result.comm_fraction_of_work(),
            large.result.comm_fraction_of_work());
}

TEST(Integration, SmallMatricesPayProportionallyMoreCommOnTheCriticalPath) {
  // Fig. 5's small end: at 160..320 the bus occupies a significant share of
  // the run (> 10%) because panels are tiny relative to per-panel sync and
  // per-transfer overheads.
  PlanConfig pc = base_config();
  pc.count_policy = CountPolicy::kAll;
  const auto tiny = simulate_tiled_qr(sim::paper_platform(), 320, 320, pc);
  EXPECT_GT(tiny.result.comm_fraction(), 0.10);
}

TEST(Integration, FunctionalHeterogeneousSolveIsAccurate) {
  // Full pipeline: auto plan + threaded functional execution + solve.
  const int n = 64, b = 16;
  auto a = la::Matrix<double>::random(n, n, 77);
  for (la::index_t i = 0; i < n; ++i) a(i, i) += 8.0;
  auto x_true = la::Matrix<double>::random(n, 1, 78);
  la::Matrix<double> rhs(n, 1);
  la::gemm<double>(la::Trans::kNoTrans, la::Trans::kNoTrans, 1.0, a.view(),
                   x_true.view(), 0.0, rhs.view());

  const sim::Platform platform = sim::paper_platform();
  PlanConfig pc = base_config(b);
  Plan plan(platform, n / b, n / b, pc);
  typename TiledQrFactorization<double>::Options opts;
  opts.plan = &plan;
  auto f = TiledQrFactorization<double>::factor(a, b, opts);
  auto x = f.solve(rhs);
  for (la::index_t i = 0; i < n; ++i)
    EXPECT_NEAR(x(i, 0), x_true(i, 0), 1e-8);
}

}  // namespace
}  // namespace tqr::core
