// Contract and race tests for the Chase-Lev work-stealing deque. The
// single-thread cases pin LIFO-pop / FIFO-steal ordering and the bounded-
// capacity spill contract; the storm cases race thieves against the owner's
// pop (including the one-element Dekker race) and are the reason this file
// runs under the TSan CI leg.
#include "runtime/work_steal_deque.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "runtime/mpmc_ring.hpp"  // cpu_relax

namespace tqr::runtime {
namespace {

TEST(WorkStealDeque, OwnerPopsLifo) {
  WorkStealDeque d(8);
  for (std::int32_t i = 0; i < 4; ++i) EXPECT_TRUE(d.push(i));
  std::int32_t t;
  for (std::int32_t i = 3; i >= 0; --i) {
    ASSERT_TRUE(d.pop(t));
    EXPECT_EQ(t, i);
  }
  EXPECT_FALSE(d.pop(t));
}

TEST(WorkStealDeque, ThiefStealsFifo) {
  WorkStealDeque d(8);
  for (std::int32_t i = 0; i < 4; ++i) EXPECT_TRUE(d.push(i));
  std::int32_t t;
  for (std::int32_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(d.steal(t));
    EXPECT_EQ(t, i);  // oldest first: the cache-cold end
  }
  EXPECT_FALSE(d.steal(t));
}

TEST(WorkStealDeque, PushReportsFullInsteadOfOverwriting) {
  WorkStealDeque d(2);  // rounds to capacity 2
  EXPECT_TRUE(d.push(1));
  EXPECT_TRUE(d.push(2));
  EXPECT_FALSE(d.push(3));  // caller spills to the inbox ring
  std::int32_t t;
  ASSERT_TRUE(d.pop(t));
  EXPECT_EQ(t, 2);
  EXPECT_TRUE(d.push(3));  // room again after the pop
}

TEST(WorkStealDeque, ZeroCapacityThrows) {
  EXPECT_THROW(WorkStealDeque(0), InvalidArgument);
}

TEST(WorkStealDeque, ResetRewindsForNextRun) {
  WorkStealDeque d(4);
  std::int32_t t;
  EXPECT_TRUE(d.push(7));
  ASSERT_TRUE(d.pop(t));
  d.reset();
  EXPECT_FALSE(d.maybe_nonempty());
  EXPECT_TRUE(d.push(9));
  ASSERT_TRUE(d.steal(t));
  EXPECT_EQ(t, 9);
}

// The Dekker race: owner pop and a thief contend for the single remaining
// element. Exactly one side may win each round; the element must never be
// lost or delivered twice.
TEST(WorkStealDeque, OwnerAndThiefRaceForLastElement) {
  constexpr int kRounds = 5000;
  WorkStealDeque d(2);
  for (int round = 0; round < kRounds; ++round) {
    ASSERT_TRUE(d.push(round));
    std::atomic<int> owner_got{-1}, thief_got{-1};
    std::thread thief([&] {
      std::int32_t t;
      if (d.steal(t)) thief_got.store(t);
    });
    std::int32_t t;
    if (d.pop(t)) owner_got.store(t);
    thief.join();
    const bool owner_won = owner_got.load() == round;
    const bool thief_won = thief_got.load() == round;
    ASSERT_NE(owner_won, thief_won) << "round " << round
                                    << ": exactly one winner required";
    d.reset();  // owner-only, thieves quiesced (joined)
  }
}

// Owner interleaves pushes and pops while several thieves strip the top:
// every pushed value must surface exactly once across all parties.
TEST(WorkStealDeque, StormDeliversEveryTaskOnce) {
  constexpr int kTasks = 20000;
  constexpr int kThieves = 3;
  WorkStealDeque d(kTasks);
  std::vector<std::atomic<int>> seen(kTasks);
  std::atomic<bool> done{false};
  std::vector<std::thread> thieves;
  for (int i = 0; i < kThieves; ++i) {
    thieves.emplace_back([&] {
      std::int32_t t;
      while (!done.load(std::memory_order_acquire)) {
        if (d.steal(t)) seen[t].fetch_add(1, std::memory_order_relaxed);
        else cpu_relax();
      }
      while (d.steal(t)) seen[t].fetch_add(1, std::memory_order_relaxed);
    });
  }
  std::int32_t next = 0;
  std::int32_t t;
  while (next < kTasks) {
    // Push a small burst, then pop some back — the executor's own rhythm.
    for (int burst = 0; burst < 8 && next < kTasks; ++burst)
      ASSERT_TRUE(d.push(next++));
    for (int burst = 0; burst < 4; ++burst)
      if (d.pop(t)) seen[t].fetch_add(1, std::memory_order_relaxed);
  }
  while (d.pop(t)) seen[t].fetch_add(1, std::memory_order_relaxed);
  done.store(true, std::memory_order_release);
  for (auto& th : thieves) th.join();
  for (int i = 0; i < kTasks; ++i)
    ASSERT_EQ(seen[i].load(), 1) << "task " << i;
}

}  // namespace
}  // namespace tqr::runtime
