#include "runtime/dag_executor.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <thread>

#include "common/error.hpp"
#include "dag/tiled_qr_dag.hpp"

namespace tqr::runtime {
namespace {

using dag::Elimination;
using dag::Task;
using dag::task_id;
using Builder = dag::TaskGraph::Builder;
using Mode = Builder::Mode;

dag::TaskGraph chain(int n) {
  Builder b(2, 2);
  for (int i = 0; i < n; ++i) {
    Task t;
    t.op = dag::Op::kGeqrt;
    t.k = static_cast<std::int16_t>(i);
    b.add_task(t, {{b.upper(0, 0), Mode::kReadWrite}});
  }
  return std::move(b).build();
}

TEST(DagExecutor, ExecutesEveryTaskOnce) {
  dag::TaskGraph g = dag::build_tiled_qr_graph(4, 4, Elimination::kTs);
  std::vector<std::atomic<int>> ran(g.size());
  DagExecutor::Options opts;
  opts.num_devices = 2;
  opts.threads_per_device = {2, 2};
  DagExecutor::run(
      g, [](task_id t, const Task&) { return t % 2; },
      [&](task_id t, const Task&, int) { ran[t].fetch_add(1); }, opts);
  for (std::size_t t = 0; t < g.size(); ++t) EXPECT_EQ(ran[t].load(), 1);
}

TEST(DagExecutor, RespectsDependenceOrder) {
  dag::TaskGraph g = dag::build_tiled_qr_graph(3, 3, Elimination::kTt);
  std::mutex m;
  std::vector<int> order(g.size(), -1);
  int clock = 0;
  DagExecutor::Options opts;
  opts.num_devices = 3;
  opts.threads_per_device = {1, 1, 1};
  DagExecutor::run(
      g, [](task_id t, const Task&) { return t % 3; },
      [&](task_id t, const Task&, int) {
        std::lock_guard<std::mutex> lock(m);
        order[t] = clock++;
      },
      opts);
  for (task_id t = 0; t < static_cast<task_id>(g.size()); ++t)
    for (auto it = g.predecessors_begin(t); it != g.predecessors_end(t); ++it)
      EXPECT_LT(order[*it], order[t]) << "task " << t << " ran before dep";
}

TEST(DagExecutor, ChainRunsSequentially) {
  dag::TaskGraph g = chain(20);
  std::vector<int> seen;
  DagExecutor::Options opts;
  opts.num_devices = 1;
  DagExecutor::run(
      g, [](task_id, const Task&) { return 0; },
      [&](task_id t, const Task&, int) { seen.push_back(t); }, opts);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(seen[i], i);
}

TEST(DagExecutor, AffinityRoutingHonored) {
  dag::TaskGraph g = dag::build_tiled_qr_graph(3, 3, Elimination::kTs);
  std::mutex m;
  std::vector<int> device_of(g.size(), -1);
  DagExecutor::Options opts;
  opts.num_devices = 2;
  DagExecutor::run(
      g,
      [](task_id, const Task& t) {
        return dag::step_of(t.op) == dag::Step::kUpdateElimination ? 1 : 0;
      },
      [&](task_id t, const Task&, int dev) {
        std::lock_guard<std::mutex> lock(m);
        device_of[t] = dev;
      },
      opts);
  for (task_id t = 0; t < static_cast<task_id>(g.size()); ++t) {
    const int expect =
        dag::step_of(g.task(t).op) == dag::Step::kUpdateElimination ? 1 : 0;
    EXPECT_EQ(device_of[t], expect);
  }
}

TEST(DagExecutor, TraceRecordsEveryTask) {
  dag::TaskGraph g = dag::build_tiled_qr_graph(3, 3, Elimination::kTs);
  Trace trace;
  DagExecutor::Options opts;
  opts.num_devices = 2;
  opts.trace = &trace;
  DagExecutor::run(
      g, [](task_id t, const Task&) { return t % 2; },
      [](task_id, const Task&, int) {}, opts);
  EXPECT_EQ(trace.events().size(), g.size());
  std::set<std::int32_t> ids;
  for (const auto& e : trace.events()) {
    ids.insert(e.task);
    EXPECT_GE(e.end_s, e.start_s);
  }
  EXPECT_EQ(ids.size(), g.size());
}

TEST(DagExecutor, PropagatesKernelExceptions) {
  dag::TaskGraph g = chain(5);
  DagExecutor::Options opts;
  opts.num_devices = 1;
  EXPECT_THROW(
      DagExecutor::run(
          g, [](task_id, const Task&) { return 0; },
          [](task_id t, const Task&, int) {
            if (t == 2) throw tqr::Error("boom");
          },
          opts),
      tqr::Error);
}

TEST(DagExecutor, EmptyGraphReturnsImmediately) {
  Builder b(1, 1);
  dag::TaskGraph g = std::move(b).build();
  DagExecutor::Options opts;
  opts.num_devices = 1;
  const double secs = DagExecutor::run(
      g, [](task_id, const Task&) { return 0; },
      [](task_id, const Task&, int) {}, opts);
  EXPECT_GE(secs, 0.0);
}

TEST(DagExecutor, InvalidOptionsRejected) {
  dag::TaskGraph g = chain(2);
  DagExecutor::Options opts;
  opts.num_devices = 0;
  EXPECT_THROW(DagExecutor::run(
                   g, [](task_id, const Task&) { return 0; },
                   [](task_id, const Task&, int) {}, opts),
               tqr::InvalidArgument);
  opts.num_devices = 2;
  opts.threads_per_device = {1};  // size mismatch
  EXPECT_THROW(DagExecutor::run(
                   g, [](task_id, const Task&) { return 0; },
                   [](task_id, const Task&, int) {}, opts),
               tqr::InvalidArgument);
}

TEST(DagExecutorEngine, SuccessiveGraphsOnOneEngine) {
  DagExecutor::Options opts;
  opts.num_devices = 2;
  opts.threads_per_device = {2, 2};
  DagExecutor engine(opts);
  EXPECT_EQ(engine.num_devices(), 2);
  for (int round = 0; round < 4; ++round) {
    dag::TaskGraph g = dag::build_tiled_qr_graph(3 + round % 2, 3,
                                                 Elimination::kTt);
    std::vector<std::atomic<int>> ran(g.size());
    engine.execute(
        g, [](task_id t, const Task&) { return t % 2; },
        [&](task_id t, const Task&, int) { ran[t].fetch_add(1); });
    for (std::size_t t = 0; t < g.size(); ++t)
      EXPECT_EQ(ran[t].load(), 1) << "round " << round;
  }
  EXPECT_EQ(engine.runs_completed(), 4u);
}

TEST(DagExecutorEngine, ReusesTheSameThreads) {
  DagExecutor::Options opts;
  opts.num_devices = 1;
  opts.threads_per_device = {1};
  DagExecutor engine(opts);
  std::set<std::thread::id> ids;
  std::mutex m;
  for (int round = 0; round < 3; ++round) {
    dag::TaskGraph g = chain(4);
    engine.execute(
        g, [](task_id, const Task&) { return 0; },
        [&](task_id, const Task&, int) {
          std::lock_guard<std::mutex> lock(m);
          ids.insert(std::this_thread::get_id());
        });
  }
  // A resident engine must not respawn its device group between runs.
  EXPECT_EQ(ids.size(), 1u);
}

TEST(DagExecutorEngine, SurvivesKernelExceptionAndRunsAgain) {
  DagExecutor::Options opts;
  opts.num_devices = 1;
  DagExecutor engine(opts);
  dag::TaskGraph g = chain(5);
  EXPECT_THROW(engine.execute(
                   g, [](task_id, const Task&) { return 0; },
                   [](task_id t, const Task&, int) {
                     if (t == 2) throw tqr::Error("boom");
                   }),
               tqr::Error);
  // The engine stays usable after a failed run.
  std::atomic<int> ran{0};
  engine.execute(
      g, [](task_id, const Task&) { return 0; },
      [&](task_id, const Task&, int) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 5);
  EXPECT_EQ(engine.runs_completed(), 1u);  // failed run does not count
}

TEST(DagExecutorEngine, ConcurrentExecuteCallsSerialize) {
  DagExecutor::Options opts;
  opts.num_devices = 2;
  DagExecutor engine(opts);
  std::atomic<int> inside{0};
  std::atomic<bool> overlapped{false};
  auto body = [&] {
    dag::TaskGraph g = chain(8);
    engine.execute(
        g, [](task_id, const Task&) { return 0; },
        [&](task_id, const Task&, int) {
          if (inside.fetch_add(1) > 0) overlapped.store(true);
          std::this_thread::sleep_for(std::chrono::microseconds(100));
          inside.fetch_sub(1);
        });
  };
  std::thread a(body), b(body);
  a.join();
  b.join();
  // chain() serializes its own tasks, so any overlap means two runs were
  // live on the engine at once.
  EXPECT_FALSE(overlapped.load());
  EXPECT_EQ(engine.runs_completed(), 2u);
}

TEST(DagExecutorEngine, EmptyGraphNoOp) {
  DagExecutor::Options opts;
  opts.num_devices = 1;
  DagExecutor engine(opts);
  Builder b(1, 1);
  dag::TaskGraph g = std::move(b).build();
  const double secs = engine.execute(
      g, [](task_id, const Task&) { return 0; },
      [](task_id, const Task&, int) {});
  EXPECT_GE(secs, 0.0);
  EXPECT_EQ(engine.runs_completed(), 0u);
}

TEST(DagExecutorEngine, TracePerRunIsIndependent) {
  DagExecutor::Options opts;
  opts.num_devices = 1;
  DagExecutor engine(opts);
  Trace first, second;
  dag::TaskGraph g = chain(6);
  auto noop = [](task_id, const Task&, int) {};
  auto aff = [](task_id, const Task&) { return 0; };
  engine.execute(g, aff, noop, &first);
  engine.execute(g, aff, noop, &second);
  EXPECT_EQ(first.events().size(), 6u);
  EXPECT_EQ(second.events().size(), 6u);
}

TEST(DagExecutorEngine, PostTaskHookRunsOncePerTaskAfterKernel) {
  DagExecutor::Options opts;
  opts.num_devices = 2;
  opts.threads_per_device = {2, 2};
  DagExecutor engine(opts);
  dag::TaskGraph g = dag::build_tiled_qr_graph(4, 4, Elimination::kTt);
  std::vector<std::atomic<int>> kernel_ran(g.size());
  std::vector<std::atomic<int>> hook_ran(g.size());
  DagExecutor::Kernel hook = [&](task_id t, const Task&, int) {
    // Runs after the task's kernel (same worker thread, before successors
    // are released), so the kernel's effect is already visible.
    EXPECT_EQ(kernel_ran[t].load(), 1) << "hook before kernel for " << t;
    hook_ran[t].fetch_add(1);
  };
  engine.execute(
      g, [](task_id t, const Task&) { return t % 2; },
      [&](task_id t, const Task&, int) { kernel_ran[t].fetch_add(1); },
      nullptr, nullptr, &hook);
  for (std::size_t t = 0; t < g.size(); ++t)
    EXPECT_EQ(hook_ran[t].load(), 1) << "task " << t;
}

TEST(DagExecutorEngine, ThrowingPostTaskHookFailsRunAndBlocksSuccessors) {
  // A verification hook that rejects a task's output must behave exactly
  // like a kernel exception: the run rethrows it, the poisoned task's
  // successors never execute, and the engine stays usable.
  DagExecutor::Options opts;
  opts.num_devices = 1;
  DagExecutor engine(opts);
  dag::TaskGraph g = chain(6);  // strict chain: successors of 2 are 3,4,5
  std::atomic<int> ran{0};
  DagExecutor::Kernel hook = [](task_id t, const Task&, int) {
    if (t == 2) throw tqr::VerificationError("bad tile");
  };
  EXPECT_THROW(engine.execute(
                   g, [](task_id, const Task&) { return 0; },
                   [&](task_id, const Task&, int) { ran.fetch_add(1); },
                   nullptr, nullptr, &hook),
               tqr::VerificationError);
  EXPECT_EQ(ran.load(), 3);  // tasks 0,1,2 ran; 3,4,5 never released
  ran.store(0);
  engine.execute(
      g, [](task_id, const Task&) { return 0; },
      [&](task_id, const Task&, int) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 6);  // engine healthy without the hook
}

TEST(DagExecutor, MultiWorkerGroupStealsAndExecutesEveryTaskOnce) {
  // Several workers share one device group's ready tasks through the
  // work-stealing deques. Whatever mix of owner pops, inbox pops, and
  // steals happens, every task runs exactly once — and since every task is
  // enqueued exactly once, the routing counters must account for all of
  // them (local deque pushes + inbox pushes == task count).
  dag::TaskGraph g = dag::build_tiled_qr_graph(5, 5, Elimination::kTs);
  std::vector<std::atomic<int>> ran(g.size());
  ExecCounters counters;
  DagExecutor::Options opts;
  opts.num_devices = 1;
  opts.threads_per_device = {3};
  opts.counters = &counters;
  DagExecutor engine(opts);
  engine.execute(
      g, [](task_id, const Task&) { return 0; },
      [&](task_id t, const Task&, int) { ran[t].fetch_add(1); });
  for (std::size_t t = 0; t < g.size(); ++t) EXPECT_EQ(ran[t].load(), 1);
  EXPECT_EQ(counters.local_pushes.load() + counters.inbox_pushes.load(),
            g.size());
  EXPECT_EQ(counters.drained_tasks.load(), 0u);
}

TEST(DagExecutorEngine, RepeatedRunsExerciseParkUnparkWithoutLostWakeups) {
  // Lost-wakeup regression against the futex park path: every run ends with
  // idle workers parking on their device eventcount and the next run must
  // rouse them. Dozens of tiny back-to-back runs on a multi-worker engine
  // turn a missed notify into a hang (caught by the test timeout) instead
  // of a flake.
  ExecCounters counters;
  DagExecutor::Options opts;
  opts.num_devices = 2;
  opts.threads_per_device = {2, 2};
  opts.counters = &counters;
  DagExecutor engine(opts);
  dag::TaskGraph g = chain(10);
  for (int run = 0; run < 50; ++run) {
    std::atomic<int> ran{0};
    engine.execute(
        g, [run](task_id t, const Task&) { return (t + run) % 2; },
        [&](task_id, const Task&, int) { ran.fetch_add(1); });
    ASSERT_EQ(ran.load(), 10);
  }
  EXPECT_EQ(engine.runs_completed(), 50u);
}

TEST(Trace, BusyAccounting) {
  Trace trace;
  trace.record({0, dag::Op::kGeqrt, 0, 0.0, 1.0});
  trace.record({1, dag::Op::kTsmqr, 1, 0.0, 2.0});
  trace.record({2, dag::Op::kTsmqr, 1, 2.0, 3.0});
  const auto busy = trace.busy_per_device(2);
  EXPECT_DOUBLE_EQ(busy[0], 1.0);
  EXPECT_DOUBLE_EQ(busy[1], 3.0);
  const auto steps = trace.busy_per_step();
  EXPECT_DOUBLE_EQ(steps[0], 1.0);  // T
  EXPECT_DOUBLE_EQ(steps[3], 3.0);  // UE
}

TEST(Trace, CsvContainsHeaderAndRows) {
  Trace trace;
  trace.record({0, dag::Op::kGeqrt, 0, 0.0, 1.0});
  const std::string csv = trace.to_csv();
  EXPECT_NE(csv.find("task,op,step,device"), std::string::npos);
  EXPECT_NE(csv.find("GEQRT"), std::string::npos);
}

}  // namespace
}  // namespace tqr::runtime

namespace tqr::runtime {
namespace {

TEST(DagExecutor, PanelPriorityServesLowestTaskIdFirst) {
  // One device, one thread, all tasks made ready up front by using an
  // edge-free graph: with panel_priority the service order must be sorted
  // even though we seed in natural order and FIFO would match it too — so
  // force a distinguishing case by checking against *reverse* insertion.
  dag::TaskGraph::Builder b(4, 4);
  // Independent tasks on distinct tiles.
  for (int i = 0; i < 8; ++i) {
    dag::Task t;
    t.op = dag::Op::kGeqrt;
    t.k = static_cast<std::int16_t>(i);
    b.add_task(t, {{b.upper(i % 4, i / 4), dag::TaskGraph::Builder::Mode::kWrite}});
  }
  dag::TaskGraph g = std::move(b).build();

  std::vector<dag::task_id> order;
  std::mutex m;
  DagExecutor::Options opts;
  opts.num_devices = 1;
  opts.panel_priority = true;
  DagExecutor::run(
      g, [](dag::task_id, const dag::Task&) { return 0; },
      [&](dag::task_id t, const dag::Task&, int) {
        std::lock_guard<std::mutex> lock(m);
        order.push_back(t);
      },
      opts);
  ASSERT_EQ(order.size(), 8u);
  for (std::size_t i = 1; i < order.size(); ++i)
    EXPECT_LT(order[i - 1], order[i]);
}

TEST(DagExecutor, PanelPriorityFactorizationStillCorrect) {
  // Functional run with priority queues produces identical factors.
  // (Covered numerically by the core tests; here we just check completion
  // and dependence order under priority service.)
  dag::TaskGraph g = dag::build_tiled_qr_graph(4, 4, dag::Elimination::kTt);
  std::vector<int> order(g.size(), -1);
  std::mutex m;
  int clock = 0;
  DagExecutor::Options opts;
  opts.num_devices = 2;
  opts.panel_priority = true;
  opts.threads_per_device = {2, 2};
  DagExecutor::run(
      g, [](dag::task_id t, const dag::Task&) { return t % 2; },
      [&](dag::task_id t, const dag::Task&, int) {
        std::lock_guard<std::mutex> lock(m);
        order[t] = clock++;
      },
      opts);
  for (dag::task_id t = 0; t < static_cast<dag::task_id>(g.size()); ++t)
    for (auto it = g.predecessors_begin(t); it != g.predecessors_end(t); ++it)
      EXPECT_LT(order[*it], order[t]);
}

}  // namespace
}  // namespace tqr::runtime
