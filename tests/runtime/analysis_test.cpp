#include "runtime/analysis.hpp"

#include <gtest/gtest.h>

#include "core/plan.hpp"
#include "core/simulate.hpp"
#include "dag/tiled_qr_dag.hpp"
#include "sim/des.hpp"

namespace tqr::runtime {
namespace {

/// Simulates a small factorization into the provided holder (Trace owns a
/// mutex and is not movable).
struct Traced {
  dag::TaskGraph graph;
  Trace trace;
  sim::Platform platform;
};

void traced_run(int nt, Traced& out) {
  out.graph = dag::build_tiled_qr_graph(nt, nt, dag::Elimination::kTt);
  out.platform = sim::paper_platform();
  core::PlanConfig pc;
  pc.tile_size = 16;
  pc.count_policy = core::CountPolicy::kAll;
  pc.main_policy = core::MainPolicy::kFixed;
  pc.fixed_main = 1;
  core::Plan plan(out.platform, nt, nt, pc);
  sim::SimOptions opts;
  opts.tile_size = 16;
  opts.trace = &out.trace;
  sim::simulate(out.graph, plan.assignment(out.graph), out.platform, nt, nt,
                opts);
}

TEST(Analysis, UtilizationBinsBoundedAndBusyWhereExpected) {
  Traced r;
  traced_run(8, r);
  std::vector<int> slots;
  for (int d = 0; d < r.platform.num_devices(); ++d)
    slots.push_back(r.platform.device(d).slots);
  const auto util = utilization_timeline(r.trace, slots, 40);
  ASSERT_EQ(util.size(), 4u);
  double total = 0;
  for (const auto& dev : util)
    for (double u : dev) {
      EXPECT_GE(u, 0.0);
      EXPECT_LE(u, 1.0 + 1e-9);
      total += u;
    }
  EXPECT_GT(total, 0.0);
  // CPU receives no columns under the guide array: its row must be silent.
  for (double u : util[0]) EXPECT_EQ(u, 0.0);
}

TEST(Analysis, UtilizationRowRendering) {
  EXPECT_EQ(utilization_row({0.0, 0.1, 0.5, 0.9}), " .+#");
}

TEST(Analysis, PerPanelStatsCoverAllTasksAndPanels) {
  Traced r;
  traced_run(6, r);
  const auto stats = per_panel_stats(r.trace, r.graph);
  ASSERT_EQ(stats.size(), 6u);
  std::int64_t tasks = 0;
  for (const auto& s : stats) {
    tasks += s.tasks;
    EXPECT_GE(s.end_s, s.start_s);
  }
  EXPECT_EQ(tasks, static_cast<std::int64_t>(r.graph.size()));
  // Panels start in order (panel k+1 cannot begin before panel k).
  for (std::size_t p = 1; p < stats.size(); ++p)
    EXPECT_GE(stats[p].start_s, stats[p - 1].start_s - 1e-12);
}

TEST(Analysis, RealizedCriticalPathIsAChainEndingAtMakespan) {
  Traced r;
  traced_run(6, r);
  const auto path = realized_critical_path(r.trace, r.graph);
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(r.graph.indegree(path.front()), 0);
  // Consecutive entries are actual dependence edges.
  for (std::size_t i = 1; i < path.size(); ++i) {
    bool is_pred = false;
    for (auto it = r.graph.predecessors_begin(path[i]);
         it != r.graph.predecessors_end(path[i]); ++it)
      is_pred |= (*it == path[i - 1]);
    EXPECT_TRUE(is_pred) << "broken chain at " << i;
  }
  // The path ends at the task that finishes last.
  std::vector<double> end(r.graph.size());
  double makespan = 0;
  for (const auto& e : r.trace.events()) {
    end[e.task] = e.end_s;
    makespan = std::max(makespan, e.end_s);
  }
  EXPECT_DOUBLE_EQ(end[path.back()], makespan);
}

TEST(Analysis, CriticalPathSharesSumToAtMostOne) {
  Traced r;
  traced_run(6, r);
  double total = 0;
  for (int d = 0; d < r.platform.num_devices(); ++d)
    total += critical_path_share(r.trace, r.graph, d);
  EXPECT_GT(total, 0.3);  // kernels dominate the path
  EXPECT_LE(total, 1.0 + 1e-9);
  // The main device carries a substantial share (it runs every T/E).
  EXPECT_GT(critical_path_share(r.trace, r.graph, 1), 0.1);
}

TEST(Analysis, IncompleteTraceRejectedForCriticalPath) {
  Traced r;
  traced_run(4, r);
  Trace partial;
  partial.record(r.trace.events().front());
  EXPECT_THROW(realized_critical_path(partial, r.graph),
               tqr::InvalidArgument);
}

}  // namespace
}  // namespace tqr::runtime
