#include "runtime/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>

#include "common/error.hpp"

namespace tqr::runtime {
namespace {

TEST(ThreadPool, RunsAllJobs) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i)
    pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, JobsCanSubmitJobs) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.submit([&] {
    counter.fetch_add(1);
    pool.submit([&] { counter.fetch_add(10); });
  });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 11);
}

TEST(ThreadPool, ZeroThreadsRejected) {
  EXPECT_THROW(ThreadPool{0}, tqr::InvalidArgument);
}

TEST(ThreadPool, SizeReportsThreadCount) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, ManyWaitIdleCycles) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 10; ++i) pool.submit([&] { counter.fetch_add(1); });
    pool.wait_idle();
    EXPECT_EQ(counter.load(), (round + 1) * 10);
  }
}

TEST(ThreadPool, DestructorDrainsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 8; ++i) pool.submit([&] { counter.fetch_add(1); });
    pool.wait_idle();
  }
  EXPECT_EQ(counter.load(), 8);
}

}  // namespace
}  // namespace tqr::runtime
