#include "runtime/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "common/error.hpp"

namespace tqr::runtime {
namespace {

TEST(ThreadPool, RunsAllJobs) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i)
    pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, JobsCanSubmitJobs) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.submit([&] {
    counter.fetch_add(1);
    pool.submit([&] { counter.fetch_add(10); });
  });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 11);
}

TEST(ThreadPool, ZeroThreadsRejected) {
  EXPECT_THROW(ThreadPool{0}, tqr::InvalidArgument);
}

TEST(ThreadPool, SizeReportsThreadCount) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, ManyWaitIdleCycles) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 10; ++i) pool.submit([&] { counter.fetch_add(1); });
    pool.wait_idle();
    EXPECT_EQ(counter.load(), (round + 1) * 10);
  }
}

TEST(ThreadPool, DestructorDrainsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 8; ++i) pool.submit([&] { counter.fetch_add(1); });
    pool.wait_idle();
  }
  EXPECT_EQ(counter.load(), 8);
}

TEST(ThreadPool, DestructorRunsJobsStillQueued) {
  // The shutdown contract: jobs accepted before shutdown began are executed,
  // not discarded, even when the destructor fires while they are queued.
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    // Jam the single worker so the remaining submits stay queued.
    pool.submit([] {
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
    });
    for (int i = 0; i < 16; ++i) pool.submit([&] { counter.fetch_add(1); });
  }  // destructor must drain all 16 before joining
  EXPECT_EQ(counter.load(), 16);
}

TEST(ThreadPool, SubmitAfterShutdownThrows) {
  ThreadPool pool(2);
  pool.submit([] {});
  pool.shutdown();
  EXPECT_THROW(pool.submit([] {}), tqr::Error);
}

TEST(ThreadPool, ShutdownIsIdempotent) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 4; ++i) pool.submit([&] { counter.fetch_add(1); });
  pool.shutdown();
  pool.shutdown();  // second call must be a no-op, not a double-join
  EXPECT_EQ(counter.load(), 4);
}

TEST(ThreadPool, NestedSubmitDuringDrainThrows) {
  // A draining job that re-submits after shutdown began must get the same
  // refusal an external caller would — queued work cannot grow unboundedly
  // during teardown. The job keeps submitting until shutdown catches up.
  std::atomic<bool> nested_threw{false};
  {
    ThreadPool pool(1);
    pool.submit([&] {
      for (int i = 0; i < 500 && !nested_threw.load(); ++i) {
        try {
          pool.submit([] {});
        } catch (const tqr::Error&) {
          nested_threw.store(true);
          return;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    });
  }  // destructor begins shutdown while the job is still spinning
  EXPECT_TRUE(nested_threw.load());
}

}  // namespace
}  // namespace tqr::runtime
