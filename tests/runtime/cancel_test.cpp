// Cooperative cancellation of DagExecutor runs, plus the Trace reader-race
// regression. The concurrency tests here are the ones scripts/check.sh runs
// under ThreadSanitizer.
#include "runtime/cancel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "dag/tiled_qr_dag.hpp"
#include "runtime/dag_executor.hpp"
#include "runtime/trace.hpp"

namespace tqr::runtime {
namespace {

using dag::Task;
using dag::task_id;
using Builder = dag::TaskGraph::Builder;
using Mode = Builder::Mode;

dag::TaskGraph chain(int n) {
  Builder b(2, 2);
  for (int i = 0; i < n; ++i) {
    Task t;
    t.op = dag::Op::kGeqrt;
    t.k = static_cast<std::int16_t>(i);
    b.add_task(t, {{b.upper(0, 0), Mode::kReadWrite}});
  }
  return std::move(b).build();
}

TEST(CancelToken, LatchesOnceAndResets) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  token.request_cancel();
  EXPECT_TRUE(token.cancelled());
  token.request_cancel();  // idempotent
  EXPECT_TRUE(token.cancelled());
  token.reset();
  EXPECT_FALSE(token.cancelled());
}

TEST(CancelToken, WakerFiresOnCancelAndOnLateRegistration) {
  CancelToken token;
  std::atomic<int> fired{0};
  token.set_waker([&] { fired.fetch_add(1); });
  token.request_cancel();
  EXPECT_EQ(fired.load(), 1);
  token.request_cancel();  // second request: latch already set, no re-fire
  EXPECT_EQ(fired.load(), 1);

  // Registering a waker on an already-latched token must fire immediately —
  // the cancel-before-execute path depends on it.
  std::atomic<int> late{0};
  token.set_waker([&] { late.fetch_add(1); });
  EXPECT_EQ(late.load(), 1);
  token.clear_waker();
}

TEST(DagExecutorCancel, CancelBeforeExecuteThrowsAndRunsNothing) {
  DagExecutor::Options opts;
  opts.num_devices = 1;
  DagExecutor engine(opts);
  dag::TaskGraph g = chain(8);
  std::atomic<int> ran{0};
  CancelToken token;
  token.request_cancel();
  EXPECT_THROW(engine.execute(
                   g, [](task_id, const Task&) { return 0; },
                   [&](task_id, const Task&, int) { ran.fetch_add(1); },
                   nullptr, &token),
               Cancelled);
  EXPECT_EQ(ran.load(), 0);
  EXPECT_EQ(engine.runs_completed(), 0u);

  // The token is reusable after reset(), and the engine is unharmed.
  token.reset();
  engine.execute(
      g, [](task_id, const Task&) { return 0; },
      [&](task_id, const Task&, int) { ran.fetch_add(1); }, nullptr, &token);
  EXPECT_EQ(ran.load(), 8);
  EXPECT_EQ(engine.runs_completed(), 1u);
}

TEST(DagExecutorCancel, MidRunCancelAbortsPromptlyAndEngineStaysUsable) {
  constexpr int kTasks = 200;
  DagExecutor::Options opts;
  opts.num_devices = 2;
  opts.threads_per_device = {1, 1};
  DagExecutor engine(opts);
  dag::TaskGraph g = chain(kTasks);
  std::atomic<int> ran{0};
  CancelToken token;

  // Cancel from another thread once a few tasks have gone through; sleepy
  // kernels keep the run alive long enough for the signal to land mid-run.
  std::thread canceller([&] {
    while (ran.load() < 3)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    token.request_cancel();
  });
  bool cancelled_thrown = false;
  std::string what;
  try {
    engine.execute(
        g, [](task_id, const Task&) { return 0; },
        [&](task_id, const Task&, int) {
          ran.fetch_add(1);
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
        },
        nullptr, &token);
  } catch (const Cancelled& e) {
    cancelled_thrown = true;
    what = e.what();
  }
  canceller.join();
  EXPECT_TRUE(cancelled_thrown);
  // Aborted at a task boundary: strictly partial progress, and the run never
  // counts as completed.
  EXPECT_GE(ran.load(), 3);
  EXPECT_LT(ran.load(), kTasks);
  EXPECT_EQ(engine.runs_completed(), 0u);
  EXPECT_NE(what.find("cancelled"), std::string::npos) << what;

  // The same engine (same resident worker threads) runs the next graph to
  // completion once the token is reset.
  token.reset();
  std::atomic<int> ran2{0};
  engine.execute(
      g, [](task_id, const Task&) { return 0; },
      [&](task_id, const Task&, int) { ran2.fetch_add(1); }, nullptr, &token);
  EXPECT_EQ(ran2.load(), kTasks);
  EXPECT_EQ(engine.runs_completed(), 1u);
}

TEST(DagExecutorCancel, CancelDuringLastKernelStillReportsCancelled) {
  // A cancel that latches while the final kernel is running wins: the run is
  // reported Cancelled (the deadline story — "too late" stays too late even
  // if the kernel happened to finish), and it never counts as completed.
  DagExecutor::Options opts;
  opts.num_devices = 1;
  DagExecutor engine(opts);
  dag::TaskGraph g = chain(4);
  std::atomic<int> ran{0};
  CancelToken token;
  EXPECT_THROW(engine.execute(
                   g, [](task_id, const Task&) { return 0; },
                   [&](task_id t, const Task&, int) {
                     ran.fetch_add(1);
                     if (t == 3) token.request_cancel();  // mid-last-kernel
                   },
                   nullptr, &token),
               Cancelled);
  EXPECT_EQ(ran.load(), 4);  // every kernel did run ...
  EXPECT_EQ(engine.runs_completed(), 0u);  // ... but the run is not "clean"
}

TEST(DagExecutorCancel, KernelFailureStillReportedAsOriginalError) {
  // A kernel exception must not be relabelled kCancelled even when a cancel
  // arrives while the failure is unwinding.
  DagExecutor::Options opts;
  opts.num_devices = 1;
  DagExecutor engine(opts);
  dag::TaskGraph g = chain(6);
  CancelToken token;
  EXPECT_THROW(engine.execute(
                   g, [](task_id, const Task&) { return 0; },
                   [&](task_id t, const Task&, int) {
                     if (t == 2) throw Error("kernel exploded");
                   },
                   nullptr, &token),
               Error);
  token.reset();
  std::atomic<int> ran{0};
  engine.execute(
      g, [](task_id, const Task&) { return 0; },
      [&](task_id, const Task&, int) { ran.fetch_add(1); }, nullptr, &token);
  EXPECT_EQ(ran.load(), 6);
}

dag::TaskGraph independent(int n) {
  Builder b(static_cast<std::int32_t>(n), 1);
  for (int i = 0; i < n; ++i) {
    Task t;
    t.op = dag::Op::kGeqrt;
    t.k = static_cast<std::int16_t>(i);
    b.add_task(t, {{b.upper(i, 0), Mode::kReadWrite}});
  }
  return std::move(b).build();
}

TEST(DagExecutorCancel, DroppedTasksAreAccountedInTraceAndCounters) {
  // The silent-drop bug this PR fixes: tasks a cancelled run never executed
  // used to vanish without a trace, so merged Perfetto timelines didn't
  // balance. Now every dispatched task is either a kTask span or a
  // kCancelled/kDrained instant, and the drop count surfaces through
  // ExecCounters. Eight independent seeds on one worker: the first kernel
  // latches the token, the other seven are still queued and must drain as
  // accounted drops.
  constexpr int kTasks = 8;
  ExecCounters counters;
  DagExecutor::Options opts;
  opts.num_devices = 1;
  opts.counters = &counters;
  DagExecutor engine(opts);
  dag::TaskGraph g = independent(kTasks);
  std::atomic<int> ran{0};
  CancelToken token;
  Trace trace;
  EXPECT_THROW(engine.execute(
                   g, [](task_id, const Task&) { return 0; },
                   [&](task_id, const Task&, int) {
                     if (ran.fetch_add(1) == 0) token.request_cancel();
                   },
                   &trace, &token),
               Cancelled);
  const int executed = ran.load();
  EXPECT_LT(executed, kTasks);

  const TraceSnapshot events = trace.events();
  int spans = 0, drops = 0;
  for (const TraceEvent& e : events) {
    if (e.kind == TraceEvent::Kind::kTask) ++spans;
    else ++drops;
  }
  // Every dispatched task is accounted exactly once: span or drop instant.
  EXPECT_EQ(spans, executed);
  EXPECT_EQ(spans + drops, kTasks);
  EXPECT_GE(drops, 1);
  EXPECT_EQ(counters.drained_tasks.load(), static_cast<std::uint64_t>(drops));
  // Drop instants are zero-duration and add no busy time.
  for (const TraceEvent& e : events)
    if (e.kind != TraceEvent::Kind::kTask) EXPECT_EQ(e.start_s, e.end_s);
}

TEST(DagExecutorCancel, CleanRunRecordsNoDropInstants) {
  // TraceRecordsEveryTask pins events().size() == graph size for clean runs;
  // this pins the complementary property explicitly — drop instants only
  // ever come from aborted/failed runs.
  ExecCounters counters;
  DagExecutor::Options opts;
  opts.num_devices = 1;
  opts.counters = &counters;
  DagExecutor engine(opts);
  dag::TaskGraph g = chain(16);
  Trace trace;
  engine.execute(
      g, [](task_id, const Task&) { return 0; },
      [](task_id, const Task&, int) {}, &trace);
  for (const TraceEvent& e : trace.events())
    EXPECT_EQ(e.kind, TraceEvent::Kind::kTask);
  EXPECT_EQ(counters.drained_tasks.load(), 0u);
  EXPECT_EQ(trace.events().size(), g.size());
}

TEST(TraceRace, ConcurrentReadersAndWritersAreSafe) {
  // Regression for the reader-side race: events()/busy_*/dump readers used
  // to walk events_ without the lock while record() could reallocate it.
  // Run writers and every reader concurrently; TSan (scripts/check.sh)
  // turns any relapse into a hard failure.
  Trace trace;
  constexpr int kEventsPerWriter = 4000;
  std::vector<std::thread> writers;
  for (int w = 0; w < 2; ++w) {
    writers.emplace_back([&, w] {
      TraceEvent e;
      e.device = w;
      e.op = dag::Op::kGeqrt;
      for (int i = 0; i < kEventsPerWriter; ++i) {
        e.task = i;
        e.start_s = i * 1e-3;
        e.end_s = e.start_s + 1e-3;
        trace.record(e);
      }
    });
  }
  // Read while the writers append: every reader must see a consistent
  // snapshot (never a half-grown vector).
  while (trace.size() < 2 * kEventsPerWriter) {
    const auto snapshot = trace.events();
    for (std::size_t i = 1; i < snapshot.size(); ++i)
      ASSERT_GE(snapshot[i].task, 0);
    (void)trace.busy_per_device(2);
    (void)trace.busy_per_step();
    (void)trace.to_csv();
    (void)trace.to_chrome_json();
  }
  for (auto& t : writers) t.join();
  EXPECT_EQ(trace.size(), 2u * kEventsPerWriter);
}

}  // namespace
}  // namespace tqr::runtime
