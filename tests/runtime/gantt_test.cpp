#include "runtime/gantt.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace tqr::runtime {
namespace {

void fill_small_trace(Trace& t) {
  t.record({0, dag::Op::kGeqrt, 0, 0.0, 1e-3});
  t.record({1, dag::Op::kUnmqr, 1, 1e-3, 2e-3});
  t.record({2, dag::Op::kTtqrt, 0, 1e-3, 1.5e-3});
  t.record({3, dag::Op::kTtmqr, 2, 2e-3, 3e-3});
}

TEST(Gantt, ProducesWellFormedSvg) {
  Trace t;
  fill_small_trace(t);
  const std::string svg = render_gantt_svg(t);
  EXPECT_EQ(svg.rfind("<svg", 0), 0u);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  // One rect per event (+ background + legend rects).
  std::size_t rects = 0, pos = 0;
  while ((pos = svg.find("<rect", pos)) != std::string::npos) {
    ++rects;
    pos += 5;
  }
  EXPECT_GE(rects, 4u + 1u);
}

TEST(Gantt, UsesProvidedDeviceNames) {
  GanttOptions opts;
  opts.device_names = {"CPU", "GTX580", "GTX680"};
  Trace t;
  fill_small_trace(t);
  const std::string svg = render_gantt_svg(t, opts);
  EXPECT_NE(svg.find("GTX580"), std::string::npos);
  EXPECT_NE(svg.find("GTX680"), std::string::npos);
}

TEST(Gantt, FallsBackToGenericNames) {
  Trace t;
  fill_small_trace(t);
  const std::string svg = render_gantt_svg(t);
  EXPECT_NE(svg.find("dev 0"), std::string::npos);
  EXPECT_NE(svg.find("dev 2"), std::string::npos);
}

TEST(Gantt, StepsGetDistinctColors) {
  Trace t;
  fill_small_trace(t);
  const std::string svg = render_gantt_svg(t);
  EXPECT_NE(svg.find("#c0392b"), std::string::npos);  // T
  EXPECT_NE(svg.find("#e67e22"), std::string::npos);  // E
  EXPECT_NE(svg.find("#2980b9"), std::string::npos);  // UT
  EXPECT_NE(svg.find("#27ae60"), std::string::npos);  // UE
}

TEST(Gantt, RejectsHugeTraces) {
  Trace t;
  for (int i = 0; i < 100; ++i)
    t.record({i, dag::Op::kTsmqr, 0, i * 1e-3, i * 1e-3 + 1e-4});
  GanttOptions opts;
  opts.max_events = 50;
  EXPECT_THROW(render_gantt_svg(t, opts), tqr::InvalidArgument);
}

TEST(Gantt, EmptyTraceStillRenders) {
  Trace t;
  const std::string svg = render_gantt_svg(t);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
}

TEST(ChromeJson, WellFormedEventArray) {
  Trace t;
  fill_small_trace(t);
  const std::string json = t.to_chrome_json();
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find("\"name\":\"GEQRT\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\":2"), std::string::npos);
}

}  // namespace
}  // namespace tqr::runtime
