// Stress and contract tests for the lock-free building blocks behind the
// service queue and the executor: the Vyukov MPMC ring, the backoff helper,
// and the eventcount. The thread-storm cases are the ones the TSan CI leg
// exists for — they encode the races (capacity-1 ping-pong, N x M storms,
// park-vs-publish) that broke or would break the naive formulations.
#include "runtime/mpmc_ring.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/error.hpp"

namespace tqr::runtime {
namespace {

TEST(MpmcRing, PushPopRoundTripPreservesFifo) {
  MpmcRing<int> ring(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(int{i}));
  for (int i = 0; i < 4; ++i) {
    auto v = ring.try_pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(ring.try_pop().has_value());
}

TEST(MpmcRing, CapacityIsExactNotRoundedToPowerOfTwo) {
  MpmcRing<int> ring(3);
  EXPECT_EQ(ring.capacity(), 3u);
  EXPECT_TRUE(ring.try_push(1));
  EXPECT_TRUE(ring.try_push(2));
  EXPECT_TRUE(ring.try_push(3));
  EXPECT_FALSE(ring.try_push(4));  // exactly 3 admitted
  EXPECT_EQ(ring.in_flight(), 3u);
}

TEST(MpmcRing, ZeroCapacityThrows) {
  EXPECT_THROW(MpmcRing<int>(0), InvalidArgument);
}

// The degenerate single-slot ring: the published sequence of ticket n equals
// the free sequence of ticket n + 1, so a ring that allocates exactly one
// physical cell lets a second push overwrite the unconsumed slot and then
// livelocks its popper. This pins the fix (>= 2 physical cells + an exact
// logical admission bound).
TEST(MpmcRing, CapacityOneRejectsSecondPushAndNeverOverwrites) {
  MpmcRing<int> ring(1);
  EXPECT_EQ(ring.capacity(), 1u);
  for (int lap = 0; lap < 100; ++lap) {
    EXPECT_TRUE(ring.try_push(int{lap}));
    EXPECT_FALSE(ring.try_push(int{-1}));  // full: must not overwrite
    EXPECT_EQ(ring.in_flight(), 1u);
    auto v = ring.try_pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, lap);
  }
  EXPECT_FALSE(ring.try_pop().has_value());
}

TEST(MpmcRing, FailedPushLeavesValueIntact) {
  MpmcRing<std::vector<int>> ring(1);
  ASSERT_TRUE(ring.try_push(std::vector<int>{1}));
  std::vector<int> mine{1, 2, 3};
  EXPECT_FALSE(ring.try_push(std::move(mine)));
  // The caller still owns a full-queue reject — the JobQueue contract.
  EXPECT_EQ(mine.size(), 3u);
}

TEST(MpmcRing, WrapsManyLaps) {
  MpmcRing<std::uint64_t> ring(3);
  std::uint64_t next_in = 0, next_out = 0;
  for (int lap = 0; lap < 1000; ++lap) {
    while (ring.try_push(std::uint64_t{next_in})) ++next_in;
    while (auto v = ring.try_pop()) {
      ASSERT_EQ(*v, next_out);
      ++next_out;
    }
  }
  EXPECT_EQ(next_in, next_out);
  EXPECT_EQ(ring.in_flight(), 0u);
}

// N producers x M consumers storm through a tiny ring: every pushed value
// must come out exactly once. Run under TSan/ASan this is the core
// correctness check for the claim/publish protocol.
TEST(MpmcRing, ManyProducersManyConsumersDeliverEverythingOnce) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 3;
  constexpr int kPerProducer = 2000;
  MpmcRing<std::uint32_t> ring(4);

  std::vector<std::atomic<int>> seen(kProducers * kPerProducer);
  std::atomic<int> consumed{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      Backoff backoff;
      for (int i = 0; i < kPerProducer; ++i) {
        const auto v = static_cast<std::uint32_t>(p * kPerProducer + i);
        while (!ring.try_push(std::uint32_t{v})) backoff.pause();
        backoff.reset();
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      Backoff backoff;
      while (consumed.load(std::memory_order_acquire) <
             kProducers * kPerProducer) {
        if (auto v = ring.try_pop()) {
          seen[*v].fetch_add(1, std::memory_order_relaxed);
          consumed.fetch_add(1, std::memory_order_acq_rel);
          backoff.reset();
        } else {
          backoff.pause();
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& s : seen) EXPECT_EQ(s.load(), 1);
  EXPECT_EQ(ring.in_flight(), 0u);
}

TEST(Backoff, ExhaustsAfterBoundedSpins) {
  Backoff b;
  EXPECT_FALSE(b.exhausted());
  EXPECT_FALSE(b.spun());
  int pauses = 0;
  while (!b.exhausted()) {
    b.pause();
    ASSERT_LT(++pauses, 64) << "spin budget must be bounded";
  }
  EXPECT_TRUE(b.spun());
  b.reset();
  EXPECT_FALSE(b.exhausted());
}

// The park/publish race the eventcount protocol exists for: a waiter that
// prepared, re-checked, and decided to sleep must never sleep through a
// publication that happened after its prepare().
TEST(EventCount, WakeBetweenPrepareAndWaitIsNotLost) {
  EventCount ec;
  std::atomic<bool> work{false};
  const std::uint32_t e = ec.prepare();
  // Publish + notify after prepare(), before wait(): epoch moved, so wait()
  // must return immediately instead of sleeping forever.
  work.store(true, std::memory_order_release);
  ec.notify_all();
  ec.wait(e);
  EXPECT_TRUE(work.load());
}

TEST(EventCount, ParkedWaiterIsWokenByPublish) {
  EventCount ec;
  std::atomic<bool> work{false};
  std::thread waiter([&] {
    for (;;) {
      const std::uint32_t e = ec.prepare();
      if (work.load(std::memory_order_acquire)) return;
      ec.wait(e);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  work.store(true, std::memory_order_release);
  ec.notify_all();
  waiter.join();  // must terminate: either re-check saw work or wait woke
}

}  // namespace
}  // namespace tqr::runtime
