#include "common/cli.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace tqr {
namespace {

std::vector<char*> make_argv(std::vector<std::string>& args) {
  std::vector<char*> argv;
  for (auto& a : args) argv.push_back(a.data());
  return argv;
}

TEST(Cli, ParsesEqualsForm) {
  Cli cli;
  cli.flag("size", "matrix size");
  std::vector<std::string> args{"prog", "--size=640"};
  auto argv = make_argv(args);
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(cli.get_int("size", 0), 640);
}

TEST(Cli, ParsesSpaceForm) {
  Cli cli;
  cli.flag("size", "matrix size");
  std::vector<std::string> args{"prog", "--size", "320"};
  auto argv = make_argv(args);
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(cli.get_int("size", 0), 320);
}

TEST(Cli, BooleanFlagWithoutValue) {
  Cli cli;
  cli.flag("verbose", "chatty");
  std::vector<std::string> args{"prog", "--verbose"};
  auto argv = make_argv(args);
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_TRUE(cli.get_bool("verbose", false));
}

TEST(Cli, FallbacksWhenAbsent) {
  Cli cli;
  cli.flag("x", "");
  std::vector<std::string> args{"prog"};
  auto argv = make_argv(args);
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(cli.get_int("x", 7), 7);
  EXPECT_EQ(cli.get_double("x", 2.5), 2.5);
  EXPECT_EQ(cli.get_string("x", "d"), "d");
  EXPECT_FALSE(cli.get_bool("x", false));
}

TEST(Cli, UnknownFlagThrows) {
  Cli cli;
  std::vector<std::string> args{"prog", "--nope=1"};
  auto argv = make_argv(args);
  EXPECT_THROW(cli.parse(static_cast<int>(argv.size()), argv.data()),
               InvalidArgument);
}

TEST(Cli, HelpReturnsFalse) {
  Cli cli;
  cli.flag("size", "matrix size", "16");
  std::vector<std::string> args{"prog", "--help"};
  auto argv = make_argv(args);
  EXPECT_FALSE(cli.parse(static_cast<int>(argv.size()), argv.data()));
}

TEST(Cli, IntListParsing) {
  Cli cli;
  cli.flag("sizes", "list");
  std::vector<std::string> args{"prog", "--sizes=160,320,480"};
  auto argv = make_argv(args);
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(cli.get_int_list("sizes", {}),
            (std::vector<std::int64_t>{160, 320, 480}));
}

TEST(Cli, IntListFallback) {
  Cli cli;
  cli.flag("sizes", "list");
  std::vector<std::string> args{"prog"};
  auto argv = make_argv(args);
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(cli.get_int_list("sizes", {1, 2}),
            (std::vector<std::int64_t>{1, 2}));
}

TEST(Cli, PositionalArgumentsCollected) {
  Cli cli;
  cli.flag("a", "");
  std::vector<std::string> args{"prog", "pos1", "--a=1", "pos2"};
  auto argv = make_argv(args);
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(cli.positional(),
            (std::vector<std::string>{"pos1", "pos2"}));
}

}  // namespace
}  // namespace tqr
