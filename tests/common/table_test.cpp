#include "common/table.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace tqr {
namespace {

TEST(Table, RendersHeaderAndRows) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1.5"});
  t.add_row({"beta", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), InvalidArgument);
}

TEST(Table, CsvHasCommasAndNewlines) {
  Table t({"x", "y"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "x,y\n1,2\n");
}

TEST(Table, RowCount) {
  Table t({"x"});
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1"});
  t.add_row({"2"});
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Fmt, DoublePrecision) {
  EXPECT_EQ(fmt(1.23456, 2), "1.23");
  EXPECT_EQ(fmt(1.0, 3), "1.000");
}

TEST(Fmt, Integer) {
  EXPECT_EQ(fmt(std::int64_t{-42}), "-42");
  EXPECT_EQ(fmt(0), "0");
}

TEST(Bar, WidthProportional) {
  EXPECT_EQ(bar(0.0, 10), "..........");
  EXPECT_EQ(bar(1.0, 10), "##########");
  EXPECT_EQ(bar(0.5, 10), "#####.....");
}

TEST(Bar, ClampsOutOfRange) {
  EXPECT_EQ(bar(-1.0, 4), "....");
  EXPECT_EQ(bar(2.0, 4), "####");
}

}  // namespace
}  // namespace tqr
