#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace tqr {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, DoubleRangeRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double(-3.0, 5.0);
    EXPECT_GE(d, -3.0);
    EXPECT_LT(d, 5.0);
  }
}

TEST(Rng, UniformMeanApproximatelyHalf) {
  Rng rng(123);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(17), 17u);
}

TEST(Rng, NextBelowZeroIsZero) {
  Rng rng(9);
  EXPECT_EQ(rng.next_below(0), 0u);
}

TEST(Rng, NextBelowCoversAllResidues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, GaussianMomentsApproximatelyStandard) {
  Rng rng(77);
  const int n = 200000;
  double sum = 0, sq = 0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.next_gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.02);
}

TEST(Rng, SplitStreamsAreDecorrelated) {
  Rng parent(5);
  Rng s0 = parent.split(0);
  Rng s1 = parent.split(1);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (s0.next_u64() == s1.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, SplitIsDeterministic) {
  Rng a(5), b(5);
  Rng sa = a.split(3), sb = b.split(3);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(sa.next_u64(), sb.next_u64());
}

TEST(Splitmix64, KnownSequenceIsStable) {
  std::uint64_t s = 0;
  const std::uint64_t first = splitmix64(s);
  std::uint64_t s2 = 0;
  EXPECT_EQ(splitmix64(s2), first);
  EXPECT_NE(splitmix64(s2), first);  // second draw differs
}

}  // namespace
}  // namespace tqr
