#include "obs/json.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace tqr::obs {
namespace {

TEST(Json, ParsesScalarsAndContainers) {
  const Json doc = Json::parse(
      R"({"a": 1.5, "b": "text", "c": [1, 2, 3], "d": {"e": true, "f": null},
          "neg": -2e-3})");
  ASSERT_TRUE(doc.is_object());
  EXPECT_DOUBLE_EQ(doc.find("a")->as_number(), 1.5);
  EXPECT_EQ(doc.find("b")->as_string(), "text");
  ASSERT_TRUE(doc.find("c")->is_array());
  EXPECT_EQ(doc.find("c")->items().size(), 3u);
  EXPECT_TRUE(doc.find("d")->find("e")->as_bool());
  EXPECT_EQ(doc.find("d")->find("f")->kind(), Json::Kind::kNull);
  EXPECT_DOUBLE_EQ(doc.find("neg")->as_number(), -2e-3);
  EXPECT_EQ(doc.find("missing"), nullptr);
}

TEST(Json, StringEscapes) {
  const Json doc = Json::parse(R"({"s": "a\"b\\c\ndA"})");
  EXPECT_EQ(doc.find("s")->as_string(), "a\"b\\c\ndA");
}

TEST(Json, MembersKeepDocumentOrder) {
  const Json doc = Json::parse(R"({"z": 1, "a": 2, "m": 3})");
  const auto& m = doc.members();
  ASSERT_EQ(m.size(), 3u);
  EXPECT_EQ(m[0].first, "z");
  EXPECT_EQ(m[1].first, "a");
  EXPECT_EQ(m[2].first, "m");
}

TEST(Json, RejectsMalformedDocuments) {
  EXPECT_THROW(Json::parse(""), InvalidArgument);
  EXPECT_THROW(Json::parse("{"), InvalidArgument);
  EXPECT_THROW(Json::parse("{\"a\": }"), InvalidArgument);
  EXPECT_THROW(Json::parse("[1, 2,]"), InvalidArgument);
  EXPECT_THROW(Json::parse("1.5 extra"), InvalidArgument);
  EXPECT_THROW(Json::parse("{\"a\": 01}"), InvalidArgument);
  EXPECT_THROW(Json::parse("nulll"), InvalidArgument);
}

TEST(Json, ErrorsCarryLineAndColumn) {
  try {
    Json::parse("{\n  \"a\": ]\n}");
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("2:"), std::string::npos) << e.what();
  }
}

TEST(Json, FlattenNumbersUsesDottedPaths) {
  const Json doc = Json::parse(
      R"({"warm": {"jobs_per_s": 12.5}, "results": [{"gflops": 3.0}],
          "name": "x", "flag": true})");
  const auto flat = doc.flatten_numbers();
  ASSERT_EQ(flat.size(), 2u);
  EXPECT_DOUBLE_EQ(flat.at("warm.jobs_per_s"), 12.5);
  EXPECT_DOUBLE_EQ(flat.at("results.0.gflops"), 3.0);
}

}  // namespace
}  // namespace tqr::obs
