#include "obs/trace_log.hpp"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "dag/tiled_qr_dag.hpp"
#include "obs/json.hpp"

namespace tqr::obs {
namespace {

/// Parse-back is the well-formedness proof: whatever the log emits must be
/// a valid JSON document with the Chrome trace-event schema Perfetto loads.
Json parse_log(const TraceLog& log) { return Json::parse(log.to_json()); }

TEST(TraceLog, EmitsWellFormedChromeTraceJson) {
  TraceLog log;
  log.process_name(0, "svc queue");
  log.thread_name(1, 2, "cpu \"main\"");  // quote must survive escaping
  log.complete("GEQRT", "T", 1, 2, 0.001, 0.0005,
               TraceArgs()
                   .add("task", std::int64_t{7})
                   .add("gflops", 12.5)
                   .add("note", "a\nb"));
  log.instant("retry", "job", 1, 0, 0.002);
  log.counter("queue.depth", 0, 0.003, "depth", 4.0);

  const Json doc = parse_log(log);
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.find("displayTimeUnit")->as_string(), "ms");
  const auto& events = doc.find("traceEvents")->items();
  ASSERT_EQ(events.size(), 5u);

  const Json& meta = events[0];
  EXPECT_EQ(meta.find("ph")->as_string(), "M");
  EXPECT_EQ(meta.find("name")->as_string(), "process_name");
  EXPECT_EQ(meta.find("args")->find("name")->as_string(), "svc queue");

  EXPECT_EQ(events[1].find("args")->find("name")->as_string(),
            "cpu \"main\"");

  const Json& span = events[2];
  EXPECT_EQ(span.find("ph")->as_string(), "X");
  EXPECT_EQ(span.find("name")->as_string(), "GEQRT");
  EXPECT_EQ(span.find("cat")->as_string(), "T");
  EXPECT_EQ(span.find("pid")->as_number(), 1);
  EXPECT_EQ(span.find("tid")->as_number(), 2);
  EXPECT_DOUBLE_EQ(span.find("ts")->as_number(), 1000.0);   // us
  EXPECT_DOUBLE_EQ(span.find("dur")->as_number(), 500.0);   // us
  EXPECT_DOUBLE_EQ(span.find("args")->find("gflops")->as_number(), 12.5);
  EXPECT_EQ(span.find("args")->find("note")->as_string(), "a\nb");

  const Json& instant = events[3];
  EXPECT_EQ(instant.find("ph")->as_string(), "i");
  EXPECT_EQ(instant.find("s")->as_string(), "t");

  const Json& counter = events[4];
  EXPECT_EQ(counter.find("ph")->as_string(), "C");
  EXPECT_DOUBLE_EQ(counter.find("args")->find("depth")->as_number(), 4.0);
}

TEST(TraceLog, CapacityCapCountsDrops) {
  TraceLog log(3);
  for (int i = 0; i < 5; ++i)
    log.instant("e" + std::to_string(i), "t", 0, 0, i * 1e-3);
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.dropped(), 2u);
  EXPECT_EQ(parse_log(log).find("traceEvents")->items().size(), 3u);
}

TEST(TraceLog, ConcurrentAppendsStayWellFormed) {
  TraceLog log;
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t)
    workers.emplace_back([&log, t] {
      for (int i = 0; i < 500; ++i)
        log.complete("k", "c", t, 0, i * 1e-4, 1e-5,
                     TraceArgs().add("i", std::int64_t{i}));
    });
  for (auto& w : workers) w.join();
  EXPECT_EQ(log.size(), 2000u);
  EXPECT_EQ(parse_log(log).find("traceEvents")->items().size(), 2000u);
}

TEST(TraceLog, EmptyLogIsAValidDocument) {
  TraceLog log;
  const Json doc = parse_log(log);
  EXPECT_TRUE(doc.find("traceEvents")->is_array());
  EXPECT_EQ(doc.find("traceEvents")->items().size(), 0u);
}

TEST(TaskFlops, MatchesKernelModel) {
  EXPECT_GT(task_flops(dag::Op::kGeqrt, 64), 0);
  EXPECT_DOUBLE_EQ(task_flops(dag::Op::kGemm, 10), 2000.0);
  EXPECT_DOUBLE_EQ(task_flops(dag::Op::kTrsm, 10), 1000.0);
  EXPECT_DOUBLE_EQ(task_flops(dag::Op::kTsmqr, 10), 5000.0);
  // Factor kernels charge the full compact-WY T build (la/flops.hpp):
  // geqrt 2 b^3, tsqrt 10/3 b^3, ttqrt 4/3 b^3 — and are ib-independent
  // (the recursion assembles the same full T the unblocked kernel builds).
  EXPECT_DOUBLE_EQ(task_flops(dag::Op::kGeqrt, 10), 2000.0);
  EXPECT_DOUBLE_EQ(task_flops(dag::Op::kTsqrt, 10), 10000.0 / 3.0);
  EXPECT_DOUBLE_EQ(task_flops(dag::Op::kTtqrt, 10), 4000.0 / 3.0);
  EXPECT_DOUBLE_EQ(task_flops(dag::Op::kGeqrt, 10, 4),
                   task_flops(dag::Op::kGeqrt, 10));
  EXPECT_DOUBLE_EQ(task_flops(dag::Op::kTsqrt, 10, 4),
                   task_flops(dag::Op::kTsqrt, 10));
}

TEST(AppendTaskEvents, AnnotatesKernelClassTileAndRate) {
  const dag::TaskGraph graph = dag::build_tiled_qr_graph(
      2, 2, dag::Elimination::kTt);
  std::vector<runtime::TraceEvent> events;
  for (std::size_t t = 0; t < graph.size(); ++t) {
    runtime::TraceEvent e;
    e.task = static_cast<std::int32_t>(t);
    e.op = graph.task(static_cast<dag::task_id>(t)).op;
    e.device = static_cast<std::int32_t>(t % 2);
    e.start_s = 1e-3 * static_cast<double>(t);
    e.end_s = e.start_s + 1e-4;
    events.push_back(e);
  }

  TraceLog log;
  append_task_events(log, events, graph, 32, /*pid=*/3, /*offset_s=*/1.0);
  const Json doc = parse_log(log);
  const auto& out = doc.find("traceEvents")->items();
  ASSERT_EQ(out.size(), graph.size());

  const Json& first = out[0];
  EXPECT_EQ(first.find("name")->as_string(),
            dag::op_name(graph.task(0).op));
  EXPECT_EQ(first.find("pid")->as_number(), 3);
  EXPECT_EQ(first.find("tid")->as_number(), 1 + 0);  // 1 + device
  // Offset shifts run-relative time onto the caller's clock (1 s -> us).
  EXPECT_DOUBLE_EQ(first.find("ts")->as_number(), 1.0e6);
  const Json* args = first.find("args");
  ASSERT_NE(args, nullptr);
  EXPECT_EQ(args->find("task")->as_number(), 0);
  const double expect_gflops =
      task_flops(graph.task(0).op, 32) / 1e-4 * 1e-9;
  EXPECT_NEAR(args->find("gflops")->as_number(), expect_gflops,
              1e-9 * expect_gflops);
  // The category is the paper step of the kernel.
  const std::string cat = first.find("cat")->as_string();
  EXPECT_EQ(cat, dag::step_name(dag::step_of(graph.task(0).op)));
}

}  // namespace
}  // namespace tqr::obs
