#include "obs/metrics.hpp"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace tqr::obs {
namespace {

TEST(Counter, ConcurrentIncrementsObservedExactlyOnce) {
  Registry reg;
  Counter& c = reg.counter("hits");
  constexpr int kThreads = 8, kPerThread = 50000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.inc();
    });
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(reg.snapshot().counters.at("hits"),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Gauge, SetAndAdd) {
  Gauge g;
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.add(-1.25);
  EXPECT_DOUBLE_EQ(g.value(), 1.25);
}

TEST(Gauge, ConcurrentAddsAllLand) {
  Gauge g;
  constexpr int kThreads = 8, kPerThread = 20000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([&g] {
      for (int i = 0; i < kPerThread; ++i) g.add(1.0);
    });
  for (auto& w : workers) w.join();
  EXPECT_DOUBLE_EQ(g.value(), static_cast<double>(kThreads) * kPerThread);
}

TEST(Histogram, BucketEdgesAreUpperInclusive) {
  // Buckets: (-inf, 1], (1, 2], (2, 4], (4, +inf).
  Histogram h({1.0, 2.0, 4.0});
  h.observe(0.5);   // bucket 0
  h.observe(1.0);   // bucket 0: edges are inclusive upper bounds
  h.observe(1.001); // bucket 1
  h.observe(2.0);   // bucket 1
  h.observe(4.0);   // bucket 2
  h.observe(4.001); // overflow
  h.observe(100.0); // overflow
  const auto s = h.snapshot();
  ASSERT_EQ(s.counts.size(), 4u);
  EXPECT_EQ(s.counts[0], 2u);
  EXPECT_EQ(s.counts[1], 2u);
  EXPECT_EQ(s.counts[2], 1u);
  EXPECT_EQ(s.counts[3], 2u);
  EXPECT_EQ(s.count, 7u);
  EXPECT_NEAR(s.sum, 0.5 + 1.0 + 1.001 + 2.0 + 4.0 + 4.001 + 100.0, 1e-12);
}

TEST(Histogram, QuantilesInterpolateAndStayMonotone) {
  Histogram h(exponential_bounds(1e-3, 10.0));
  for (int i = 0; i < 1000; ++i) h.observe(0.010);  // all in one bucket
  const auto s = h.snapshot();
  const double p50 = s.quantile(0.50);
  const double p95 = s.quantile(0.95);
  EXPECT_GT(p50, 0.0);
  EXPECT_GE(p95, p50);
  // The value 0.010 lands in the (0.008, 0.016] bucket.
  EXPECT_GT(p50, 0.008);
  EXPECT_LE(p95, 0.016);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 0.008);  // bucket lower edge
  EXPECT_NEAR(s.mean(), 0.010, 1e-12);
}

TEST(Histogram, OverflowQuantileReportsLastBound) {
  Histogram h({1.0, 2.0});
  h.observe(50.0);
  EXPECT_DOUBLE_EQ(h.snapshot().quantile(0.5), 2.0);
}

TEST(Histogram, EmptyQuantileIsZero) {
  Histogram h({1.0});
  EXPECT_DOUBLE_EQ(h.snapshot().quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.snapshot().mean(), 0.0);
}

TEST(Histogram, RejectsBadBounds) {
  EXPECT_THROW(Histogram({}), InvalidArgument);
  EXPECT_THROW(Histogram({1.0, 1.0}), InvalidArgument);
  EXPECT_THROW(Histogram({2.0, 1.0}), InvalidArgument);
}

TEST(Histogram, ConcurrentObservesAllCounted) {
  Histogram h(exponential_bounds(1e-3, 1.0));
  constexpr int kThreads = 8, kPerThread = 20000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i)
        h.observe(1e-3 * (1 + ((t + i) % 7)));
    });
  for (auto& w : workers) w.join();
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, static_cast<std::uint64_t>(kThreads) * kPerThread);
  std::uint64_t total = 0;
  for (const auto c : s.counts) total += c;
  EXPECT_EQ(total, s.count);
}

TEST(Histogram, SnapshotMergeAddsBucketwise) {
  Histogram a({1.0, 2.0}), b({1.0, 2.0});
  a.observe(0.5);
  a.observe(1.5);
  b.observe(1.5);
  b.observe(9.0);
  auto sa = a.snapshot();
  sa.merge(b.snapshot());
  EXPECT_EQ(sa.counts[0], 1u);
  EXPECT_EQ(sa.counts[1], 2u);
  EXPECT_EQ(sa.counts[2], 1u);
  EXPECT_EQ(sa.count, 4u);
  EXPECT_NEAR(sa.sum, 0.5 + 1.5 + 1.5 + 9.0, 1e-12);

  Histogram c({3.0});
  EXPECT_THROW(sa.merge(c.snapshot()), InvalidArgument);
}

TEST(ExponentialBounds, DoublesUpToAndPastHi) {
  const auto b = exponential_bounds(1.0, 8.0);
  ASSERT_EQ(b.size(), 4u);
  EXPECT_DOUBLE_EQ(b[0], 1.0);
  EXPECT_DOUBLE_EQ(b[3], 8.0);
  EXPECT_THROW(exponential_bounds(0.0, 1.0), InvalidArgument);
  EXPECT_THROW(exponential_bounds(1.0, 1.0), InvalidArgument);
  EXPECT_THROW(exponential_bounds(1.0, 2.0, 1.0), InvalidArgument);
}

TEST(Registry, StableReferencesAndKindCollision) {
  Registry reg;
  Counter& c1 = reg.counter("jobs");
  Counter& c2 = reg.counter("jobs");
  EXPECT_EQ(&c1, &c2);  // get-or-create returns the same metric
  EXPECT_THROW(reg.gauge("jobs"), InvalidArgument);
  EXPECT_THROW(reg.histogram("jobs", {1.0}), InvalidArgument);
  reg.histogram("lat", {1.0, 2.0});
  EXPECT_THROW(reg.counter("lat"), InvalidArgument);
}

TEST(Registry, SnapshotMergeSumsCounters) {
  Registry a, b;
  a.counter("x").inc(3);
  b.counter("x").inc(4);
  b.counter("y").inc(1);
  b.gauge("g").set(2.0);
  auto sa = a.snapshot();
  sa.merge(b.snapshot());
  EXPECT_EQ(sa.counters.at("x"), 7u);
  EXPECT_EQ(sa.counters.at("y"), 1u);
  EXPECT_DOUBLE_EQ(sa.gauges.at("g"), 2.0);
}

TEST(Registry, TextExpositionShape) {
  Registry reg;
  reg.counter("jobs.completed").inc(5);
  reg.gauge("queue.depth").set(3);
  auto& h = reg.histogram("lat_s", {1.0, 2.0});
  h.observe(0.5);
  h.observe(9.0);
  const std::string text = reg.to_text();
  EXPECT_NE(text.find("jobs.completed 5"), std::string::npos) << text;
  EXPECT_NE(text.find("queue.depth 3"), std::string::npos) << text;
  EXPECT_NE(text.find("lat_s_bucket{le=\"1\"} 1"), std::string::npos) << text;
  EXPECT_NE(text.find("lat_s_bucket{le=\"+Inf\"} 2"), std::string::npos)
      << text;
  EXPECT_NE(text.find("lat_s_count 2"), std::string::npos) << text;
}

}  // namespace
}  // namespace tqr::obs
