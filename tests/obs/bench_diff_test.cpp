#include "obs/bench_diff.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "obs/json.hpp"

namespace tqr::obs {
namespace {

/// A miniature kernels_gbench document: two kernels at two tiles plus a
/// derived speedup, every gflops value scaled by `scale`.
std::string kernels_doc(double scale) {
  auto g = [scale](double v) { return std::to_string(v * scale); };
  return "{\"bench\": \"kernels\", \"quick\": true, "
         "\"gemm_speedup_at_128\": " + g(3.0) + ", \"results\": ["
         "{\"kernel\": \"gemm_naive\", \"tile\": 64, \"gflops\": " + g(15.0) +
         ", \"sec_per_call\": 1e-5},"
         "{\"kernel\": \"gemm_packed\", \"tile\": 64, \"gflops\": " + g(45.0) +
         ", \"sec_per_call\": 1e-5},"
         "{\"kernel\": \"gemm_naive\", \"tile\": 128, \"gflops\": " + g(16.0) +
         ", \"sec_per_call\": 1e-4},"
         "{\"kernel\": \"gemm_packed\", \"tile\": 128, \"gflops\": " + g(48.0) +
         ", \"sec_per_call\": 1e-4}]}";
}

std::map<std::string, Metric> metrics_of(const std::string& text) {
  return extract_metrics(Json::parse(text));
}

TEST(ExtractMetrics, ResultsRowsBecomeDottedIds) {
  const auto m = metrics_of(kernels_doc(1.0));
  ASSERT_EQ(m.size(), 5u);
  EXPECT_DOUBLE_EQ(m.at("gflops.gemm_naive.t64").value, 15.0);
  EXPECT_DOUBLE_EQ(m.at("gflops.gemm_packed.t128").value, 48.0);
  EXPECT_DOUBLE_EQ(m.at("gemm_speedup_at_128").value, 3.0);
  // Latencies are intentionally not extracted (redundant with the rates).
  EXPECT_EQ(m.count("results.0.sec_per_call"), 0u);
}

TEST(ExtractMetrics, RateLeavesFromNestedObjects) {
  const auto m = metrics_of(
      R"({"cold": {"jobs_per_s": 10, "p50_ms": 3},
          "warm": {"jobs_per_s": 40}, "warm_speedup": 4.0})");
  ASSERT_EQ(m.size(), 4u);
  EXPECT_DOUBLE_EQ(m.at("cold.jobs_per_s").value, 10.0);
  EXPECT_TRUE(m.at("cold.jobs_per_s").higher_is_better);
  EXPECT_DOUBLE_EQ(m.at("warm.jobs_per_s").value, 40.0);
  EXPECT_DOUBLE_EQ(m.at("warm_speedup").value, 4.0);
  // Latency quantiles extract too, gating in the opposite direction (the
  // serve sweep's submit_pick_p99_ms rides this).
  EXPECT_DOUBLE_EQ(m.at("cold.p50_ms").value, 3.0);
  EXPECT_FALSE(m.at("cold.p50_ms").higher_is_better);
}

TEST(ExtractMetrics, LatencyLeafRegressesWhenItGoesUp) {
  const auto base = metrics_of(R"({"sweep": {"s64": {
      "jobs_per_s": 100, "submit_pick_p99_ms": 10}}})");
  const auto slow = metrics_of(R"({"sweep": {"s64": {
      "jobs_per_s": 100, "submit_pick_p99_ms": 25}}})");
  CompareOptions opts;
  opts.tolerance = 0.35;
  const auto r = compare(base, slow, opts);
  EXPECT_FALSE(r.pass());
  EXPECT_EQ(r.regressions, 1);  // p99 up 2.5x fails; jobs_per_s flat passes
  // And the same numbers the other way round improve, not regress.
  EXPECT_TRUE(compare(slow, base, opts).pass());
}

TEST(BenchDiff, IdenticalRunsPass) {
  const auto base = metrics_of(kernels_doc(1.0));
  const auto r = compare(base, base, CompareOptions{});
  EXPECT_TRUE(r.pass());
  EXPECT_EQ(r.regressions, 0);
  EXPECT_EQ(r.lines.size(), 5u);
}

TEST(BenchDiff, SmallNoiseWithinToleranceStillPasses) {
  const auto base = metrics_of(kernels_doc(1.0));
  const auto wobble = metrics_of(kernels_doc(0.80));  // -20% vs 35% tolerance
  CompareOptions opts;
  opts.tolerance = 0.35;
  EXPECT_TRUE(compare(base, wobble, opts).pass());
}

TEST(BenchDiff, TwoTimesSlowdownFails) {
  // The CI acceptance scenario: a synthetic 2x slowdown must exit nonzero.
  const auto base = metrics_of(kernels_doc(1.0));
  const auto slow = metrics_of(kernels_doc(0.5));
  CompareOptions opts;
  opts.tolerance = 0.35;
  const auto r = compare(base, slow, opts);
  EXPECT_FALSE(r.pass());
  EXPECT_EQ(r.regressions, 5);
  for (const auto& line : r.lines) {
    EXPECT_TRUE(line.regressed) << line.id;
    EXPECT_NEAR(line.ratio, 0.5, 1e-12);
  }
  EXPECT_NE(r.format().find("FAIL"), std::string::npos);
}

TEST(BenchDiff, SingleMetricRegressionIsFlagged) {
  const auto base = metrics_of(kernels_doc(1.0));
  auto current = base;
  current["gflops.gemm_packed.t128"].value *= 0.5;
  CompareOptions opts;
  opts.tolerance = 0.35;
  const auto r = compare(base, current, opts);
  EXPECT_FALSE(r.pass());
  EXPECT_EQ(r.regressions, 1);
  for (const auto& line : r.lines)
    EXPECT_EQ(line.regressed, line.id == "gflops.gemm_packed.t128");
}

TEST(BenchDiff, AnchorRescalesAwayUniformMachineSpeed) {
  // A uniformly 2x-slower machine is not a regression once anchored.
  const auto base = metrics_of(kernels_doc(1.0));
  const auto slow = metrics_of(kernels_doc(0.5));
  CompareOptions opts;
  opts.tolerance = 0.10;
  opts.anchor = "gflops.gemm_naive.t128";
  const auto r = compare(base, slow, opts);
  EXPECT_TRUE(r.pass());
  EXPECT_NEAR(r.anchor_scale, 0.5, 1e-12);
  // ...but a *relative* regression still fails under the same anchor.
  auto skew = slow;
  skew["gflops.gemm_packed.t64"].value *= 0.5;
  EXPECT_FALSE(compare(base, skew, opts).pass());
}

TEST(BenchDiff, MissingMetricsSkippedByDefaultFatalWithRequireAll) {
  const auto base = metrics_of(kernels_doc(1.0));
  auto current = base;
  current.erase("gflops.gemm_packed.t128");
  CompareOptions opts;
  const auto lenient = compare(base, current, opts);
  EXPECT_TRUE(lenient.pass());
  ASSERT_EQ(lenient.missing.size(), 1u);
  EXPECT_EQ(lenient.missing[0], "gflops.gemm_packed.t128");

  opts.require_all = true;
  const auto strict = compare(base, current, opts);
  EXPECT_FALSE(strict.pass());
  EXPECT_TRUE(strict.missing_fatal);
}

TEST(BenchDiff, EmptyIntersectionIsSchemaMismatch) {
  const auto base = metrics_of(kernels_doc(1.0));
  const auto other = metrics_of(R"({"warm": {"jobs_per_s": 10}})");
  const auto r = compare(base, other, CompareOptions{});
  EXPECT_TRUE(r.schema_mismatch);
  EXPECT_FALSE(r.pass());
  EXPECT_NE(r.format().find("schema drift"), std::string::npos);
}

TEST(BenchDiff, OnlyFilterNarrowsTheComparison) {
  const auto base = metrics_of(kernels_doc(1.0));
  auto current = base;
  current["gemm_speedup_at_128"].value = 0.1;  // would regress
  CompareOptions opts;
  opts.only = {"gflops"};
  const auto r = compare(base, current, opts);
  EXPECT_TRUE(r.pass());
  EXPECT_EQ(r.lines.size(), 4u);
}

TEST(BenchDiff, OnlyFilterAcceptsMultipleTokens) {
  // The CI factor-kernel gate selects geqrt and tsqrt rates together; a
  // metric matches when any token equals one of its key segments.
  const auto base = metrics_of(kernels_doc(1.0));
  auto current = base;
  CompareOptions opts;
  opts.only = {"gemm_naive", "gemm_packed"};
  const auto both = compare(base, current, opts);
  EXPECT_TRUE(both.pass());
  EXPECT_EQ(both.lines.size(), 4u);
  // A regression inside the selection still fails; one outside it cannot.
  current["gflops.gemm_naive.t64"].value *= 0.1;
  EXPECT_FALSE(compare(base, current, opts).pass());
  opts.only = {"gemm_packed"};
  EXPECT_TRUE(compare(base, current, opts).pass());
}

TEST(BenchDiff, OnlyFilterMatchesWholeSegmentsNotSubstrings) {
  // A "geqrt" gate must not silently widen to batched_geqrt-style keys as
  // new benches land; tokens match whole dot-separated segments only.
  std::map<std::string, Metric> base;
  base["gflops.geqrt.t64"] = Metric{10.0, true};
  base["gflops.batched_geqrt.t8"] = Metric{50.0, true};
  auto current = base;
  current["gflops.batched_geqrt.t8"].value = 1.0;  // 50x regression
  CompareOptions opts;
  opts.tolerance = 0.35;
  opts.only = {"geqrt"};
  const auto r = compare(base, current, opts);
  EXPECT_TRUE(r.pass());  // the batched key is outside the gate
  ASSERT_EQ(r.lines.size(), 1u);
  EXPECT_EQ(r.lines[0].id, "gflops.geqrt.t64");
  // The batched key is reachable by its own exact segment.
  opts.only = {"batched_geqrt"};
  EXPECT_FALSE(compare(base, current, opts).pass());
}

TEST(ExtractMetrics, BatchedProblemRatesExtractAsRates) {
  const auto m = metrics_of(
      R"({"batched": {"s8": {"problems_per_s": 5e6,
                             "loop_problems_per_s": 1e6}},
          "batch": 256})");
  ASSERT_EQ(m.size(), 2u);
  EXPECT_TRUE(m.at("batched.s8.problems_per_s").higher_is_better);
  EXPECT_TRUE(m.at("batched.s8.loop_problems_per_s").higher_is_better);
  EXPECT_EQ(m.count("batch"), 0u);  // config scalar, not a gated metric
}

TEST(BenchDiff, AnchorMustExistOnBothSides) {
  const auto base = metrics_of(kernels_doc(1.0));
  auto current = base;
  CompareOptions opts;
  opts.anchor = "gflops.nonexistent.t1";
  EXPECT_THROW(compare(base, current, opts), InvalidArgument);
}

}  // namespace
}  // namespace tqr::obs
