// Integration: the QrService's registry-backed stats and its Chrome trace,
// validated by parsing the emitted JSON back.
#include <future>
#include <vector>

#include <gtest/gtest.h>

#include "obs/json.hpp"
#include "svc/qr_service.hpp"

namespace tqr::svc {
namespace {

JobSpec spec_for(la::index_t rows, la::index_t cols, std::uint64_t seed) {
  JobSpec spec;
  spec.a = la::Matrix<double>::random(rows, cols, seed);
  return spec;
}

TEST(ServiceObs, TraceParsesBackWithLifecycleAndKernelSpans) {
  ServiceConfig config;
  config.lanes = 2;
  config.collect_trace = true;
  QrService service(config);

  std::vector<std::future<JobResult>> futures;
  for (int i = 0; i < 4; ++i)
    futures.push_back(service.submit(spec_for(64, 64, 10 + i)));
  service.drain();
  for (auto& f : futures) EXPECT_EQ(f.get().status, JobStatus::kOk);

  ASSERT_NE(service.trace(), nullptr);
  EXPECT_EQ(service.trace()->dropped(), 0u);
  const obs::Json doc = obs::Json::parse(service.trace_json());
  const auto& events = doc.find("traceEvents")->items();
  ASSERT_FALSE(events.empty());

  int queued = 0, jobs = 0, kernels = 0, counters = 0, meta = 0;
  for (const auto& e : events) {
    const std::string ph = e.find("ph")->as_string();
    const std::string name = e.find("name")->as_string();
    if (ph == "M") ++meta;
    if (ph == "C") ++counters;
    if (ph == "X" && name == "queued") {
      ++queued;
      EXPECT_EQ(e.find("pid")->as_number(), 0);  // the queue track
    }
    if (ph == "X" && name.rfind("job ", 0) == 0) {
      ++jobs;
      EXPECT_EQ(e.find("args")->find("status")->as_string(), "ok");
      EXPECT_GE(e.find("pid")->as_number(), 1);  // a lane track
    }
    if (ph == "X" && name == "GEQRT") {
      ++kernels;
      const obs::Json* args = e.find("args");
      ASSERT_NE(args, nullptr);
      EXPECT_GT(args->find("gflops")->as_number(), 0.0);
      EXPECT_NE(args->find("k"), nullptr);
    }
  }
  EXPECT_EQ(queued, 4);
  EXPECT_EQ(jobs, 4);
  // 64x64 at the default tile 16 is a 4x4 grid; TT elimination (the spec
  // default) triangulates every panel tile: 4+3+2+1 = 10 GEQRTs per job.
  EXPECT_EQ(kernels, 40);
  EXPECT_GE(counters, 4);  // a queue-depth sample per submit at minimum
  EXPECT_GT(meta, 0);
}

TEST(ServiceObs, TracingOffMeansNoLogAndEmptyDocument) {
  QrService service{ServiceConfig{}};
  EXPECT_EQ(service.trace(), nullptr);
  const obs::Json doc = obs::Json::parse(service.trace_json());
  EXPECT_EQ(doc.find("traceEvents")->items().size(), 0u);
}

TEST(ServiceObs, MetricsSnapshotMatchesServiceStats) {
  QrService service{ServiceConfig{}};
  std::vector<std::future<JobResult>> futures;
  for (int i = 0; i < 3; ++i)
    futures.push_back(service.submit(spec_for(48, 48, 20 + i)));
  service.drain();
  for (auto& f : futures) EXPECT_EQ(f.get().status, JobStatus::kOk);

  const ServiceStats s = service.stats();
  EXPECT_EQ(s.jobs_submitted, 3u);
  EXPECT_EQ(s.jobs_completed, 3u);
  EXPECT_GT(s.p50_ms, 0.0);
  EXPECT_GE(s.p95_ms, s.p50_ms);

  const obs::Registry::Snapshot m = service.metrics();
  EXPECT_EQ(m.counters.at("jobs.submitted"), 3u);
  EXPECT_EQ(m.counters.at("jobs.completed"), 3u);
  EXPECT_EQ(m.counters.at("queue.accepted"), 3u);
  EXPECT_EQ(m.histograms.at("job.latency_s").count, 3u);
  EXPECT_GT(m.gauges.at("uptime_s"), 0.0);

  // Both expositions carry the same registry content.
  const std::string text = service.metrics_text();
  EXPECT_NE(text.find("jobs.completed 3"), std::string::npos) << text;
  const obs::Json json = obs::Json::parse(service.metrics_json());
  EXPECT_DOUBLE_EQ(
      json.find("counters")->find("jobs.completed")->as_number(), 3.0);
}

}  // namespace
}  // namespace tqr::svc
