#include "cluster/cluster.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "la/matrix.hpp"

namespace tqr::cluster {
namespace {

svc::JobSpec job(int n, std::uint64_t seed) {
  svc::JobSpec spec;
  spec.a = la::Matrix<double>::random(n, n, seed);
  return spec;
}

TEST(Cluster, PlatformSpansNodesWithInterLinks) {
  ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.inter_gbytes_per_s = 2.0;
  Cluster c(cfg);
  const sim::Platform& p = c.platform();
  EXPECT_EQ(p.num_nodes(), 2);
  const int per_node = p.num_devices() / 2;
  EXPECT_DOUBLE_EQ(p.link(0, per_node).gbytes_per_s, 2.0);
  EXPECT_LT(p.link(0, 1).latency_us, p.link(0, per_node).latency_us);
}

TEST(Cluster, NodeStatesShipCostFavorsLocalNode) {
  ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.node.lanes = 2;
  Cluster c(cfg);
  const auto states = c.node_states(512, 512, 16, dag::Elimination::kTt);
  ASSERT_EQ(states.size(), 2u);
  // The front end is co-located with node 0: shipping there is free.
  EXPECT_DOUBLE_EQ(states[0].ship_s, 0.0);
  EXPECT_GT(states[1].ship_s, 0.0);
  // Identical nodes share one execution estimate.
  EXPECT_GT(states[0].est_exec_s, 0.0);
  EXPECT_DOUBLE_EQ(states[0].est_exec_s, states[1].est_exec_s);
  EXPECT_EQ(states[0].active_lanes, 2);
}

TEST(Cluster, FasterFabricShrinksShipCost) {
  ClusterConfig slow, fast;
  slow.nodes = fast.nodes = 2;
  slow.inter_gbytes_per_s = 1.0;
  fast.inter_gbytes_per_s = 16.0;
  Cluster cs(slow), cf(fast);
  const auto s = cs.node_states(1024, 1024, 16, dag::Elimination::kTt);
  const auto f = cf.node_states(1024, 1024, 16, dag::Elimination::kTt);
  EXPECT_GT(s[1].ship_s, f[1].ship_s);
}

TEST(Cluster, RoundRobinShardsEvenlyAndCompletesAll) {
  ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.policy = RouterPolicy::kRoundRobin;
  cfg.node.lanes = 1;
  Cluster c(cfg);
  std::vector<Cluster::Submission> subs;
  for (int j = 0; j < 8; ++j) subs.push_back(c.submit(job(64, 10 + j)));
  c.drain();
  for (auto& s : subs)
    EXPECT_EQ(s.future.get().status, svc::JobStatus::kOk);
  const ClusterStats stats = c.stats();
  EXPECT_EQ(stats.jobs_submitted, 8u);
  EXPECT_EQ(stats.jobs_completed, 8u);
  EXPECT_EQ(stats.jobs_failed, 0u);
  ASSERT_EQ(stats.routed.size(), 2u);
  EXPECT_EQ(stats.routed[0], 4u);
  EXPECT_EQ(stats.routed[1], 4u);
  EXPECT_GT(stats.jobs_per_s, 0.0);
}

TEST(Cluster, QuarantineShrinksRouterActiveLanes) {
  // Node 0 corrupts the first job it runs (NaN poison caught by tier-1
  // scan) and that lane is quarantined. The router's node_states snapshot
  // must reflect the shrunken lane set, which is what steers subsequent
  // load/cost routing away from the degraded node (Router::pick's handling
  // of degraded and fully-down nodes is covered in router_test).
  ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.node.lanes = 2;
  cfg.node.quarantine_after = 1;
  cfg.node.fault.mode = svc::FaultConfig::Mode::kCorrupt;
  cfg.node.fault.corrupt = svc::FaultConfig::Corrupt::kNaN;
  cfg.node.fault.max_injections = 1;
  Cluster c(cfg);

  svc::JobSpec first = job(64, 1);
  first.verify = svc::Verify::kScan;
  first.max_attempts = 1;
  auto sub1 = c.submit(std::move(first));
  EXPECT_EQ(sub1.node, 0);  // free ship: the cost model starts local
  EXPECT_EQ(sub1.future.get().status, svc::JobStatus::kCorrupted);

  // The breaker trips after the result is published; wait for it.
  for (int spin = 0; spin < 200; ++spin) {
    if (c.stats().lanes_quarantined >= 1) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(c.stats().lanes_quarantined, 1);

  const auto states = c.node_states(64, 64, 16, dag::Elimination::kTt);
  ASSERT_EQ(states.size(), 2u);
  EXPECT_EQ(states[0].active_lanes, 1);
  EXPECT_EQ(states[1].active_lanes, 2);

  // The cluster still completes work on the remaining lanes.
  svc::JobSpec second = job(64, 2);
  second.max_attempts = 1;
  auto sub2 = c.submit(std::move(second));
  EXPECT_EQ(sub2.future.get().status, svc::JobStatus::kOk);
  const ClusterStats stats = c.stats();
  EXPECT_EQ(stats.jobs_submitted, 2u);
  EXPECT_EQ(stats.jobs_corrupted, 1u);
}

TEST(Cluster, MergedTraceHasOnePidBlockPerNode) {
  ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.node.lanes = 2;
  cfg.node.collect_trace = true;
  Cluster c(cfg);
  std::vector<Cluster::Submission> subs;
  for (int j = 0; j < 4; ++j) subs.push_back(c.submit(job(64, 20 + j)));
  c.drain();
  for (auto& s : subs) s.future.get();
  const std::string trace = c.trace_json();
  // Node-qualified lane naming, and node 1's block starts past node 0's
  // (queue pid + lanes): base(node1) = 1 * (1 + 2) = 3.
  EXPECT_NE(trace.find("\"node0/svc queue\""), std::string::npos);
  EXPECT_NE(trace.find("\"node1/svc queue\""), std::string::npos);
  EXPECT_NE(trace.find("\"node0/lane 1\""), std::string::npos);
  EXPECT_NE(trace.find("\"node1/lane 1\""), std::string::npos);
  EXPECT_NE(trace.find("\"pid\":3"), std::string::npos);
  // One well-formed document: a single traceEvents array, balanced braces.
  EXPECT_EQ(trace.find("traceEvents"), trace.rfind("traceEvents"));
  std::int64_t depth = 0;
  for (char ch : trace) {
    if (ch == '{') ++depth;
    if (ch == '}') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(Cluster, SingleNodeClusterDegeneratesToService) {
  ClusterConfig cfg;
  cfg.nodes = 1;
  Cluster c(cfg);
  auto sub = c.submit(job(64, 5));
  EXPECT_EQ(sub.node, 0);
  EXPECT_EQ(sub.future.get().status, svc::JobStatus::kOk);
  EXPECT_EQ(c.stats().routed.size(), 1u);
}

TEST(Cluster, RejectsBadConfig) {
  ClusterConfig bad;
  bad.nodes = 0;
  EXPECT_THROW(Cluster c(bad), tqr::Error);
  bad.nodes = 2;
  bad.inter_gbytes_per_s = 0;
  EXPECT_THROW(Cluster c(bad), tqr::Error);
}

}  // namespace
}  // namespace tqr::cluster
