// Cluster-tier fault tolerance: node fault injection, failover
// resubmission, hedged requests, and the cancel/drain semantics that cover
// them. Chaos schedules are seeded and time windows generous, so the suite
// stays deterministic under sanitizers.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster.hpp"
#include "la/matrix.hpp"

namespace tqr::cluster {
namespace {

svc::JobSpec job(int n, std::uint64_t seed) {
  svc::JobSpec spec;
  spec.a = la::Matrix<double>::random(n, n, seed);
  spec.tile_size = 32;
  return spec;
}

/// Two rr nodes, one lane each, every node's first task stalls once. Used
/// by the crash/failover tests: the stall keeps the job in flight long
/// enough for a scheduled crash to catch it mid-run.
ClusterConfig chaos_base() {
  ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.policy = RouterPolicy::kRoundRobin;
  cfg.node.lanes = 1;
  cfg.node.fault.mode = svc::FaultConfig::Mode::kStall;
  cfg.node.fault.stall_s = 0.4;
  cfg.node.fault.max_injections = 1;
  return cfg;
}

svc::NodeFaultConfig crash_at(double at_s) {
  svc::NodeFaultConfig f;
  f.kind = svc::NodeFaultConfig::Kind::kCrash;
  f.at_s = at_s;
  f.duration_s = 0;  // never recovers
  return f;
}

TEST(Failover, ResubmitsAfterMidRunNodeCrash) {
  ClusterConfig cfg = chaos_base();
  cfg.max_node_attempts = 2;
  cfg.node.collect_trace = true;
  cfg.faults.push_back({0, crash_at(0.1)});
  Cluster c(cfg);

  // rr lands the job on node 0, where the injected stall holds its first
  // task past t=0.1 — the crash kills the attempt mid-run, and the
  // supervisor must resubmit to node 1 (which stalls once too, then works).
  auto sub = c.submit(job(64, 7));
  EXPECT_EQ(sub.node, 0);
  const auto r = sub.future.get();
  EXPECT_EQ(r.status, svc::JobStatus::kOk) << r.error;
  c.drain();

  const auto s = c.stats();
  EXPECT_EQ(s.failovers, 1u);
  EXPECT_EQ(s.hedges, 0u);
  EXPECT_EQ(c.node(0).stats().jobs_failed, 1u);
  EXPECT_EQ(c.node(1).stats().jobs_completed, 1u);
  ASSERT_EQ(s.node_failure_rate.size(), 2u);
  EXPECT_GT(s.node_failure_rate[0], 0.0);
  EXPECT_DOUBLE_EQ(s.node_failure_rate[1], 0.0);

  // The failover is observable everywhere: stats (above), metrics, trace.
  const auto m = c.metrics();
  bool found = false;
  for (const auto& [name, value] : m.counters)
    if (name == "cluster.failovers") {
      found = true;
      EXPECT_EQ(value, 1u);
    }
  EXPECT_TRUE(found);
  const std::string trace = c.trace_json();
  EXPECT_NE(trace.find("\"failover\""), std::string::npos);
}

TEST(Failover, SingleNodeHasNoTargetAndKeepsTerminalFailure) {
  ClusterConfig cfg = chaos_base();
  cfg.nodes = 1;
  cfg.max_node_attempts = 3;
  cfg.faults.push_back({0, crash_at(0.1)});
  Cluster c(cfg);

  // The only node crashes mid-run. Failover is armed but has no eligible
  // target (the failed node is excluded), so the original terminal failure
  // must come back — promptly, not after an infinite retry loop.
  auto sub = c.submit(job(64, 11));
  const auto r = sub.future.get();
  EXPECT_EQ(r.status, svc::JobStatus::kFailed);
  EXPECT_NE(r.error.find("node down"), std::string::npos) << r.error;
  c.drain();
  EXPECT_EQ(c.stats().failovers, 0u);
}

TEST(Failover, AllNodesCrashedIsExplicitRoutedRejection) {
  ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.node.lanes = 1;
  cfg.faults.push_back({0, crash_at(0.0)});
  cfg.faults.push_back({1, crash_at(0.0)});
  Cluster c(cfg);
  // Let both crash schedules activate before routing.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  const auto states = c.node_states(64, 64, 32, dag::Elimination::kTt);
  EXPECT_EQ(states[0].active_lanes, 0);
  EXPECT_EQ(states[1].active_lanes, 0);

  auto sub = c.submit(job(64, 13));
  EXPECT_EQ(sub.node, -1);  // routed rejection, no node ever saw the job
  const auto r = sub.future.get();
  EXPECT_EQ(r.status, svc::JobStatus::kRejected);
  EXPECT_NE(r.error.find("no healthy node"), std::string::npos) << r.error;

  const auto s = c.stats();
  EXPECT_EQ(s.routed_rejections, 1u);
  EXPECT_GE(s.jobs_rejected, 1u);
  EXPECT_EQ(s.failovers, 0u);
  c.drain();
}

TEST(Failover, HedgeClonesSlowStartAndFirstCompletionWins) {
  ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.policy = RouterPolicy::kRoundRobin;
  cfg.node.lanes = 1;
  cfg.hedge_after_s = 0.05;
  // Stall a task id that exists only in the big occupier job's DAG (8x8
  // tiles, >100 tasks), never in the 2x2 probe jobs — so node 0's lane is
  // deterministically busy for ~1s while the hedged job itself runs clean.
  cfg.node.fault.mode = svc::FaultConfig::Mode::kStall;
  cfg.node.fault.task = 50;
  cfg.node.fault.stall_s = 1.0;
  cfg.node.fault.max_injections = 1;
  Cluster c(cfg);

  // Occupy node 0's only lane directly (bypassing the router).
  auto occupier = c.node(0).submit(job(256, 17));
  std::this_thread::sleep_for(std::chrono::milliseconds(30));

  // rr routes the probe to node 0, where it sits unpicked behind the
  // occupier; after hedge_after_s the supervisor clones it to node 1,
  // which finishes first. The queued primary is cancelled.
  auto sub = c.submit(job(64, 19));
  EXPECT_EQ(sub.node, 0);
  const auto r = sub.future.get();
  EXPECT_EQ(r.status, svc::JobStatus::kOk) << r.error;
  EXPECT_EQ(occupier.get().status, svc::JobStatus::kOk);
  c.drain();

  const auto s = c.stats();
  EXPECT_EQ(s.hedges, 1u);
  EXPECT_EQ(s.hedge_wins, 1u);
  EXPECT_EQ(s.failovers, 0u);
  EXPECT_EQ(c.node(1).stats().jobs_completed, 1u);
  EXPECT_EQ(c.node(0).stats().jobs_cancelled, 1u);  // the losing primary
}

TEST(Failover, LinkDropIsRetriedOnAHealthyNode) {
  ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.policy = RouterPolicy::kRoundRobin;
  cfg.node.lanes = 1;
  cfg.max_node_attempts = 3;
  svc::NodeFaultConfig link;
  link.kind = svc::NodeFaultConfig::Kind::kFlakyLink;
  link.at_s = 0;
  link.duration_s = 0;
  link.drop_probability = 1.0;  // every ship to node 1 is lost
  cfg.faults.push_back({1, link});
  Cluster c(cfg);

  // rr: first job lands on node 0 (ships fine — the front end is
  // co-located), the second is routed to node 1 and dropped on the wire.
  auto sub0 = c.submit(job(64, 23));
  auto sub1 = c.submit(job(64, 29));
  EXPECT_EQ(sub0.node, 0);
  EXPECT_EQ(sub1.node, 1);
  EXPECT_EQ(sub1.id, 0u);  // never reached the node
  EXPECT_EQ(sub0.future.get().status, svc::JobStatus::kOk);
  // A link flake does not indict the node permanently, but failover must
  // still land the job somewhere that can take it.
  const auto r = sub1.future.get();
  EXPECT_EQ(r.status, svc::JobStatus::kOk) << r.error;
  c.drain();

  const auto s = c.stats();
  EXPECT_GE(s.link_drops, 1u);
  EXPECT_GE(s.failovers, 1u);
  ASSERT_EQ(s.node_failure_rate.size(), 2u);
  EXPECT_GT(s.node_failure_rate[1], 0.0);  // drops feed node health
  EXPECT_EQ(s.jobs_completed, 2u);
}

TEST(Failover, CancelCoversTrackedSubmissions) {
  ClusterConfig cfg = chaos_base();
  cfg.max_node_attempts = 3;
  cfg.node.fault.stall_s = 5.0;  // cancel must cut this short
  Cluster c(cfg);

  const auto t0 = std::chrono::steady_clock::now();
  auto sub = c.submit(job(64, 31));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_TRUE(c.cancel(sub.node, sub.id));
  const auto r = sub.future.get();
  EXPECT_EQ(r.status, svc::JobStatus::kCancelled);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_LT(elapsed, 4.0);  // did not serve out the 5s stall
  EXPECT_EQ(c.stats().failovers, 0u);  // cancellation never fails over
  EXPECT_FALSE(c.cancel(0, 999999));   // unknown handle
  c.drain();
}

TEST(Failover, CancelAllCoversEveryNodeAndAttempt) {
  ClusterConfig cfg = chaos_base();
  cfg.node.fault.stall_s = 5.0;
  Cluster c(cfg);

  auto sub0 = c.submit(job(64, 37));  // rr: node 0
  auto sub1 = c.submit(job(64, 41));  // rr: node 1
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_GE(c.cancel_all(), 2u);
  EXPECT_EQ(sub0.future.get().status, svc::JobStatus::kCancelled);
  EXPECT_EQ(sub1.future.get().status, svc::JobStatus::kCancelled);
  c.drain();
}

}  // namespace
}  // namespace tqr::cluster
