#include "cluster/router.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace tqr::cluster {
namespace {

NodeState node(std::size_t depth, int lanes, double est, double ship) {
  NodeState n;
  n.queue_depth = depth;
  n.active_lanes = lanes;
  n.est_exec_s = est;
  n.ship_s = ship;
  return n;
}

TEST(Router, ParsePolicyNamesAndAliases) {
  EXPECT_EQ(parse_router_policy("rr"), RouterPolicy::kRoundRobin);
  EXPECT_EQ(parse_router_policy("round-robin"), RouterPolicy::kRoundRobin);
  EXPECT_EQ(parse_router_policy("load"), RouterPolicy::kLeastLoaded);
  EXPECT_EQ(parse_router_policy("least-loaded"), RouterPolicy::kLeastLoaded);
  EXPECT_EQ(parse_router_policy("cost"), RouterPolicy::kCostModel);
  EXPECT_THROW(parse_router_policy("bogus"), tqr::InvalidArgument);
  // Names round-trip through the parser.
  for (auto p : {RouterPolicy::kRoundRobin, RouterPolicy::kLeastLoaded,
                 RouterPolicy::kCostModel})
    EXPECT_EQ(parse_router_policy(router_policy_name(p)), p);
}

TEST(Router, CostIsShipPlusQueueScaledExec) {
  EXPECT_DOUBLE_EQ(Router::cost(node(0, 2, 1.0, 0.5)), 1.5);
  // Two queued jobs over two lanes doubles the effective exec share.
  EXPECT_DOUBLE_EQ(Router::cost(node(2, 2, 1.0, 0.5)), 2.5);
  // Zero active lanes must not divide by zero.
  EXPECT_GT(Router::cost(node(4, 0, 1.0, 0.0)), 0);
}

TEST(Router, RoundRobinRotatesOverHealthyNodes) {
  Router r(RouterPolicy::kRoundRobin);
  const std::vector<NodeState> states = {
      node(0, 1, 1, 0), node(0, 0, 1, 0), node(0, 1, 1, 0)};
  // Node 1 has no active lanes: rotation alternates 0, 2, 0, 2, ...
  std::vector<int> picks;
  for (int i = 0; i < 4; ++i) picks.push_back(r.pick(states));
  EXPECT_EQ(picks, (std::vector<int>{0, 2, 0, 2}));
}

TEST(Router, LeastLoadedPicksLowestDepthPerLane) {
  Router r(RouterPolicy::kLeastLoaded);
  // Node 0: 4 jobs / 2 lanes = 2.0; node 1: 3 jobs / 4 lanes = 0.75.
  const std::vector<NodeState> states = {node(4, 2, 1, 0), node(3, 4, 1, 0)};
  EXPECT_EQ(r.pick(states), 1);
}

TEST(Router, CostModelTradesShipAgainstQueue) {
  Router r(RouterPolicy::kCostModel);
  // Empty remote node beats a backed-up local one once the queue penalty
  // outweighs the ship cost.
  const std::vector<NodeState> local_backed_up = {node(6, 1, 1.0, 0.0),
                                                  node(0, 1, 1.0, 0.5)};
  EXPECT_EQ(r.pick(local_backed_up), 1);
  // With equal queues the free local ship wins.
  const std::vector<NodeState> both_idle = {node(0, 1, 1.0, 0.0),
                                            node(0, 1, 1.0, 0.5)};
  EXPECT_EQ(r.pick(both_idle), 0);
}

TEST(Router, QuarantinedNodesSkippedUnlessAllDown) {
  Router r(RouterPolicy::kCostModel);
  // Node 0 is cheapest but has no active lanes: rerouted to node 1.
  const std::vector<NodeState> one_down = {node(0, 0, 1.0, 0.0),
                                           node(2, 1, 1.0, 0.5)};
  EXPECT_EQ(r.pick(one_down), 1);
  // Every node down: pick still returns a valid index rather than failing.
  const std::vector<NodeState> all_down = {node(0, 0, 1.0, 0.0),
                                           node(2, 0, 1.0, 0.5)};
  const int p = r.pick(all_down);
  EXPECT_TRUE(p == 0 || p == 1);
}

TEST(Router, EmptyStateListThrows) {
  Router r;
  EXPECT_THROW(r.pick({}), tqr::Error);
}

}  // namespace
}  // namespace tqr::cluster
