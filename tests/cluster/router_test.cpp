#include "cluster/router.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace tqr::cluster {
namespace {

NodeState node(std::size_t depth, int lanes, double est, double ship) {
  NodeState n;
  n.queue_depth = depth;
  n.active_lanes = lanes;
  n.est_exec_s = est;
  n.ship_s = ship;
  return n;
}

TEST(Router, ParsePolicyNamesAndAliases) {
  EXPECT_EQ(parse_router_policy("rr"), RouterPolicy::kRoundRobin);
  EXPECT_EQ(parse_router_policy("round-robin"), RouterPolicy::kRoundRobin);
  EXPECT_EQ(parse_router_policy("load"), RouterPolicy::kLeastLoaded);
  EXPECT_EQ(parse_router_policy("least-loaded"), RouterPolicy::kLeastLoaded);
  EXPECT_EQ(parse_router_policy("cost"), RouterPolicy::kCostModel);
  EXPECT_THROW(parse_router_policy("bogus"), tqr::InvalidArgument);
  // Names round-trip through the parser.
  for (auto p : {RouterPolicy::kRoundRobin, RouterPolicy::kLeastLoaded,
                 RouterPolicy::kCostModel})
    EXPECT_EQ(parse_router_policy(router_policy_name(p)), p);
}

TEST(Router, CostIsShipPlusQueueScaledExec) {
  EXPECT_DOUBLE_EQ(Router::cost(node(0, 2, 1.0, 0.5)), 1.5);
  // Two queued jobs over two lanes doubles the effective exec share.
  EXPECT_DOUBLE_EQ(Router::cost(node(2, 2, 1.0, 0.5)), 2.5);
  // Zero active lanes must not divide by zero.
  EXPECT_GT(Router::cost(node(4, 0, 1.0, 0.0)), 0);
}

TEST(Router, RoundRobinRotatesOverHealthyNodes) {
  Router r(RouterPolicy::kRoundRobin);
  const std::vector<NodeState> states = {
      node(0, 1, 1, 0), node(0, 0, 1, 0), node(0, 1, 1, 0)};
  // Node 1 has no active lanes: rotation alternates 0, 2, 0, 2, ...
  std::vector<int> picks;
  for (int i = 0; i < 4; ++i) picks.push_back(r.pick(states));
  EXPECT_EQ(picks, (std::vector<int>{0, 2, 0, 2}));
}

TEST(Router, LeastLoadedPicksLowestDepthPerLane) {
  Router r(RouterPolicy::kLeastLoaded);
  // Node 0: 4 jobs / 2 lanes = 2.0; node 1: 3 jobs / 4 lanes = 0.75.
  const std::vector<NodeState> states = {node(4, 2, 1, 0), node(3, 4, 1, 0)};
  EXPECT_EQ(r.pick(states), 1);
}

TEST(Router, CostModelTradesShipAgainstQueue) {
  Router r(RouterPolicy::kCostModel);
  // Empty remote node beats a backed-up local one once the queue penalty
  // outweighs the ship cost.
  const std::vector<NodeState> local_backed_up = {node(6, 1, 1.0, 0.0),
                                                  node(0, 1, 1.0, 0.5)};
  EXPECT_EQ(r.pick(local_backed_up), 1);
  // With equal queues the free local ship wins.
  const std::vector<NodeState> both_idle = {node(0, 1, 1.0, 0.0),
                                            node(0, 1, 1.0, 0.5)};
  EXPECT_EQ(r.pick(both_idle), 0);
}

TEST(Router, DownNodesSkippedAndAllDownIsExplicitRejection) {
  Router r(RouterPolicy::kCostModel);
  // Node 0 is cheapest but has no active lanes: rerouted to node 1.
  const std::vector<NodeState> one_down = {node(0, 0, 1.0, 0.0),
                                           node(2, 1, 1.0, 0.5)};
  EXPECT_EQ(r.pick(one_down), 1);
  // Every node down: pick refuses (-1) instead of silently feeding a node
  // known to lose the job — the cluster turns this into kRejected.
  const std::vector<NodeState> all_down = {node(0, 0, 1.0, 0.0),
                                           node(2, 0, 1.0, 0.5)};
  EXPECT_EQ(r.pick(all_down), -1);
  // Same for every policy, including a breaker-quarantined (but lane-alive)
  // node set.
  for (auto policy : {RouterPolicy::kRoundRobin, RouterPolicy::kLeastLoaded,
                      RouterPolicy::kCostModel}) {
    Router rp(policy);
    std::vector<NodeState> quarantined = {node(0, 1, 1.0, 0.0),
                                          node(0, 1, 1.0, 0.5)};
    quarantined[0].quarantined = true;
    quarantined[1].quarantined = true;
    EXPECT_EQ(rp.pick(quarantined), -1) << router_policy_name(policy);
    quarantined[1].quarantined = false;
    EXPECT_EQ(rp.pick(quarantined), 1) << router_policy_name(policy);
  }
}

TEST(Router, CostPenalizesFailureRate) {
  // Identical nodes except node 0 fails 50% of its jobs: the EWMA penalty
  // makes it (1 + kFailurePenalty * 0.5)x as expensive, so node 1 wins even
  // though it pays a ship cost.
  NodeState sick = node(0, 1, 1.0, 0.0);
  sick.failure_rate = 0.5;
  const NodeState healthy = node(0, 1, 1.0, 0.5);
  EXPECT_GT(Router::cost(sick), Router::cost(healthy));
  Router r(RouterPolicy::kCostModel);
  EXPECT_EQ(r.pick({sick, healthy}), 1);
}

TEST(Router, EmptyStateListThrows) {
  Router r;
  EXPECT_THROW(r.pick({}), tqr::Error);
}

TEST(NodeHealth, EwmaDecaysGeometricallyOnSuccess) {
  NodeHealthConfig cfg;
  cfg.ewma_alpha = 0.2;
  cfg.breaker_after = 0;  // EWMA only
  NodeHealthTracker h(2, cfg);
  h.record(0, true, 0.0);
  h.record(0, true, 0.0);
  // rate = 0.2 + 0.8 * 0.2 = 0.36 after two failures.
  EXPECT_NEAR(h.failure_rate(0), 0.36, 1e-12);
  // Each success multiplies by (1 - alpha).
  double expect = 0.36;
  for (int i = 0; i < 5; ++i) {
    h.record(0, false, 0.0);
    expect *= 0.8;
    EXPECT_NEAR(h.failure_rate(0), expect, 1e-12);
  }
  // The untouched node stays clean, and the breaker never opened.
  EXPECT_DOUBLE_EQ(h.failure_rate(1), 0.0);
  EXPECT_EQ(h.quarantines(), 0u);
  EXPECT_FALSE(h.quarantined(0, 100.0));
}

TEST(NodeHealth, BreakerTripsAfterConsecutiveFailures) {
  NodeHealthConfig cfg;
  cfg.breaker_after = 3;
  cfg.probation_s = 10.0;
  NodeHealthTracker h(1, cfg);
  h.record(0, true, 0.0);
  h.record(0, true, 0.0);
  EXPECT_FALSE(h.quarantined(0, 0.0));  // streak 2 < 3
  h.record(0, false, 0.0);              // success resets the streak
  h.record(0, true, 1.0);
  h.record(0, true, 1.0);
  EXPECT_FALSE(h.quarantined(0, 1.0));
  h.record(0, true, 1.0);  // third consecutive: trip
  EXPECT_TRUE(h.quarantined(0, 1.0));
  EXPECT_EQ(h.quarantines(), 1u);
  // Held out until probation_s elapses.
  EXPECT_TRUE(h.quarantined(0, 10.9));
  EXPECT_FALSE(h.quarantined(0, 11.1));
}

TEST(NodeHealth, HalfOpenProbationAdmitsOneProbe) {
  NodeHealthConfig cfg;
  cfg.breaker_after = 2;
  cfg.probation_s = 5.0;
  NodeHealthTracker h(1, cfg);
  h.record(0, true, 0.0);
  h.record(0, true, 0.0);
  ASSERT_TRUE(h.quarantined(0, 0.0));
  // Past the deadline the node is pickable; routing it latches half-open,
  // which holds everyone else out until the probe's verdict.
  ASSERT_FALSE(h.quarantined(0, 6.0));
  h.note_routed(0, 6.0);
  EXPECT_EQ(h.probations(), 1u);
  EXPECT_TRUE(h.quarantined(0, 6.0));
  EXPECT_TRUE(h.quarantined(0, 60.0));  // probing: time alone cannot re-admit
  // A good probe closes the breaker fully.
  h.record(0, false, 7.0);
  EXPECT_FALSE(h.quarantined(0, 7.0));
  EXPECT_EQ(h.quarantines(), 1u);
}

TEST(NodeHealth, FailedProbeReopensForAFreshProbation) {
  NodeHealthConfig cfg;
  cfg.breaker_after = 2;
  cfg.probation_s = 5.0;
  NodeHealthTracker h(1, cfg);
  h.record(0, true, 0.0);
  h.record(0, true, 0.0);
  ASSERT_TRUE(h.quarantined(0, 1.0));
  h.note_routed(0, 6.0);
  // One bad probe re-opens immediately (no need for a fresh streak).
  h.record(0, true, 6.5);
  EXPECT_TRUE(h.quarantined(0, 6.6));
  EXPECT_EQ(h.quarantines(), 2u);
  // New probation window counts from the re-open.
  EXPECT_TRUE(h.quarantined(0, 11.0));
  EXPECT_FALSE(h.quarantined(0, 11.6));
}

TEST(NodeHealth, ZeroProbationIsPermanentAndZeroBreakerDisables) {
  NodeHealthConfig permanent;
  permanent.breaker_after = 1;
  permanent.probation_s = 0;
  NodeHealthTracker h(1, permanent);
  h.record(0, true, 0.0);
  EXPECT_TRUE(h.quarantined(0, 1e9));
  h.note_routed(0, 1e9);  // never half-opens
  EXPECT_EQ(h.probations(), 0u);

  NodeHealthConfig disabled;
  disabled.breaker_after = 0;
  NodeHealthTracker d(1, disabled);
  for (int i = 0; i < 50; ++i) d.record(0, true, 0.0);
  EXPECT_FALSE(d.quarantined(0, 0.0));
  EXPECT_EQ(d.quarantines(), 0u);
  EXPECT_GT(d.failure_rate(0), 0.9);  // EWMA still tracks
}

}  // namespace
}  // namespace tqr::cluster
