#include "sim/des.hpp"

#include <gtest/gtest.h>

#include "dag/tiled_qr_dag.hpp"

namespace tqr::sim {
namespace {

using dag::Elimination;

/// A uniform synthetic device: every kernel takes the same time, making
/// makespans predictable by hand.
DeviceSpec uniform_device(double kernel_us, int slots,
                          const std::string& name = "uni") {
  DeviceSpec d;
  d.name = name;
  d.kind = DeviceKind::kGpu;
  d.cores = slots;
  d.slots = slots;
  // latency carries the whole cost; flop rate effectively infinite.
  d.geqrt = {kernel_us, 0.0, 1e18};
  d.elim = {kernel_us, 0.0, 1e18};
  d.update = {kernel_us, 0.0, 1e18};
  return d;
}

Platform uniform_platform(int n_devices, double kernel_us, int slots) {
  Platform p;
  for (int i = 0; i < n_devices; ++i)
    p.devices.push_back(uniform_device(kernel_us, slots));
  p.comm = CommModel{0.0, 1e9, true};  // free communication by default
  return p;
}

std::vector<std::uint8_t> all_on(const dag::TaskGraph& g, int dev) {
  return std::vector<std::uint8_t>(g.size(), static_cast<std::uint8_t>(dev));
}

TEST(Des, SingleTaskTakesKernelTime) {
  dag::TaskGraph g = dag::build_tiled_qr_graph(1, 1, Elimination::kTs);
  Platform p = uniform_platform(1, 100.0, 1);
  SimResult r = simulate(g, all_on(g, 0), p, 1, 1, SimOptions{});
  EXPECT_NEAR(r.makespan_s, 100e-6, 1e-12);
  EXPECT_EQ(r.tasks, 1);
  EXPECT_EQ(r.transfers, 0);
}

TEST(Des, ChainSerializesOnOneDevice) {
  // 2x1 TS grid: GEQRT -> TSQRT chain of 2 tasks.
  dag::TaskGraph g = dag::build_tiled_qr_graph(2, 1, Elimination::kTs);
  ASSERT_EQ(g.size(), 2u);
  Platform p = uniform_platform(1, 50.0, 4);
  SimResult r = simulate(g, all_on(g, 0), p, 2, 1, SimOptions{});
  EXPECT_NEAR(r.makespan_s, 100e-6, 1e-12);
}

TEST(Des, SlotsBoundConcurrency) {
  // TT panel of an 8x1 grid: 8 independent GEQRTs then a 3-level tree.
  dag::TaskGraph g = dag::build_tiled_qr_graph(8, 1, Elimination::kTt);
  Platform p1 = uniform_platform(1, 10.0, 1);
  Platform p8 = uniform_platform(1, 10.0, 8);
  SimResult serial = simulate(g, all_on(g, 0), p1, 8, 1, SimOptions{});
  SimResult wide = simulate(g, all_on(g, 0), p8, 8, 1, SimOptions{});
  // Serial: 15 tasks x 10us. Wide: 8 parallel geqrt (10) + tree 4+2+1 (30).
  EXPECT_NEAR(serial.makespan_s, 150e-6, 1e-12);
  EXPECT_NEAR(wide.makespan_s, 40e-6, 1e-12);
}

TEST(Des, BusySecondsEqualSumOfKernelTimes) {
  dag::TaskGraph g = dag::build_tiled_qr_graph(4, 4, Elimination::kTs);
  Platform p = uniform_platform(2, 25.0, 4);
  std::vector<std::uint8_t> assign(g.size());
  for (std::size_t t = 0; t < g.size(); ++t) assign[t] = t % 2;
  SimResult r = simulate(g, assign, p, 4, 4, SimOptions{});
  EXPECT_NEAR(r.total_busy_s(), g.size() * 25e-6, 1e-9);
  EXPECT_GT(r.busy_s[0], 0);
  EXPECT_GT(r.busy_s[1], 0);
}

TEST(Des, StepBusyPartitionsTotal) {
  dag::TaskGraph g = dag::build_tiled_qr_graph(5, 5, Elimination::kTt);
  Platform p = uniform_platform(1, 10.0, 16);
  SimResult r = simulate(g, all_on(g, 0), p, 5, 5, SimOptions{});
  const double steps = r.step_busy_s[0] + r.step_busy_s[1] +
                       r.step_busy_s[2] + r.step_busy_s[3];
  EXPECT_NEAR(steps, r.total_busy_s(), 1e-9);
  for (double s : r.step_busy_s) EXPECT_GT(s, 0);
}

TEST(Des, NoTransfersOnSingleDevice) {
  dag::TaskGraph g = dag::build_tiled_qr_graph(4, 4, Elimination::kTt);
  Platform p = uniform_platform(1, 10.0, 4);
  SimResult r = simulate(g, all_on(g, 0), p, 4, 4, SimOptions{});
  EXPECT_EQ(r.transfers, 0);
  EXPECT_EQ(r.bytes_moved, 0);
  EXPECT_DOUBLE_EQ(r.comm_s, 0.0);
}

TEST(Des, CrossDeviceAssignmentMovesBytes) {
  dag::TaskGraph g = dag::build_tiled_qr_graph(4, 4, Elimination::kTs);
  Platform p = uniform_platform(2, 10.0, 4);
  p.comm = CommModel{1.0, 1.0, true};
  // Panel work on device 0, all updates on device 1.
  std::vector<std::uint8_t> assign(g.size());
  for (std::size_t t = 0; t < g.size(); ++t) {
    const auto step = dag::step_of(g.task(t).op);
    assign[t] = (step == dag::Step::kTriangulation ||
                 step == dag::Step::kElimination)
                    ? 0
                    : 1;
  }
  SimOptions opts;
  opts.tile_size = 16;
  opts.element_bytes = 4;
  SimResult r = simulate(g, assign, p, 4, 4, opts);
  EXPECT_GT(r.transfers, 0);
  EXPECT_GT(r.bytes_moved, 0);
  EXPECT_GT(r.comm_s, 0.0);
  // Every transfer is a whole number of 1KB tiles.
  EXPECT_EQ(r.bytes_moved % (16 * 16 * 4), 0);
}

TEST(Des, CommCostIncreasesMakespan) {
  dag::TaskGraph g = dag::build_tiled_qr_graph(6, 6, Elimination::kTs);
  Platform cheap = uniform_platform(2, 10.0, 4);
  Platform pricey = uniform_platform(2, 10.0, 4);
  pricey.comm = CommModel{100.0, 0.001, true};
  std::vector<std::uint8_t> assign(g.size());
  for (std::size_t t = 0; t < g.size(); ++t) assign[t] = g.task(t).j >= 0 ? (g.task(t).j % 2) : 0;
  SimResult fast = simulate(g, assign, cheap, 6, 6, SimOptions{});
  SimResult slow = simulate(g, assign, pricey, 6, 6, SimOptions{});
  EXPECT_GT(slow.makespan_s, fast.makespan_s);
  EXPECT_GT(slow.comm_fraction(), fast.comm_fraction());
}

TEST(Des, FasterSecondDeviceShortensMakespan) {
  dag::TaskGraph g = dag::build_tiled_qr_graph(6, 6, Elimination::kTt);
  Platform one = uniform_platform(1, 20.0, 2);
  Platform two = uniform_platform(2, 20.0, 2);
  std::vector<std::uint8_t> split(g.size());
  for (std::size_t t = 0; t < g.size(); ++t)
    split[t] = g.task(t).j >= 0 ? (g.task(t).j % 2) : 0;
  SimResult r1 = simulate(g, all_on(g, 0), one, 6, 6, SimOptions{});
  SimResult r2 = simulate(g, split, two, 6, 6, SimOptions{});
  EXPECT_LT(r2.makespan_s, r1.makespan_s);
}

TEST(Des, MakespanAtLeastCriticalPathAndAtMostSerial) {
  dag::TaskGraph g = dag::build_tiled_qr_graph(5, 5, Elimination::kTs);
  Platform p = uniform_platform(1, 10.0, 8);
  SimResult r = simulate(g, all_on(g, 0), p, 5, 5, SimOptions{});
  const double cp = g.critical_path([](const dag::Task&) { return 10e-6; });
  EXPECT_GE(r.makespan_s, cp - 1e-12);
  EXPECT_LE(r.makespan_s, g.size() * 10e-6 + 1e-12);
}

TEST(Des, DeterministicAcrossRuns) {
  dag::TaskGraph g = dag::build_tiled_qr_graph(6, 6, Elimination::kTt);
  Platform p = uniform_platform(3, 13.0, 4);
  p.comm = CommModel{2.0, 3.0, true};
  std::vector<std::uint8_t> assign(g.size());
  for (std::size_t t = 0; t < g.size(); ++t)
    assign[t] = g.task(t).j >= 0 ? (g.task(t).j % 3) : 0;
  SimResult a = simulate(g, assign, p, 6, 6, SimOptions{});
  SimResult b = simulate(g, assign, p, 6, 6, SimOptions{});
  EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);
  EXPECT_EQ(a.transfers, b.transfers);
}

TEST(Des, TraceCoversAllTasksWithConsistentIntervals) {
  dag::TaskGraph g = dag::build_tiled_qr_graph(4, 4, Elimination::kTs);
  Platform p = uniform_platform(2, 10.0, 2);
  runtime::Trace trace;
  SimOptions opts;
  opts.trace = &trace;
  std::vector<std::uint8_t> assign(g.size());
  for (std::size_t t = 0; t < g.size(); ++t) assign[t] = t % 2;
  SimResult r = simulate(g, assign, p, 4, 4, opts);
  ASSERT_EQ(trace.events().size(), g.size());
  for (const auto& e : trace.events()) {
    EXPECT_GE(e.start_s, 0.0);
    EXPECT_GT(e.end_s, e.start_s);
    EXPECT_LE(e.end_s, r.makespan_s + 1e-12);
  }
}

TEST(Des, AssignmentSizeMismatchRejected) {
  dag::TaskGraph g = dag::build_tiled_qr_graph(2, 2, Elimination::kTs);
  Platform p = uniform_platform(1, 10.0, 1);
  std::vector<std::uint8_t> bad(g.size() - 1, 0);
  EXPECT_THROW(simulate(g, bad, p, 2, 2, SimOptions{}),
               tqr::InvalidArgument);
}

}  // namespace
}  // namespace tqr::sim
