// Multi-node extension (paper §VIII future work): node-aware links, the
// per-node bus channels, and the link-aware device-count optimizer.
#include <gtest/gtest.h>

#include "core/plan.hpp"
#include "core/simulate.hpp"
#include "dag/tiled_qr_dag.hpp"
#include "sim/des.hpp"
#include "sim/platform.hpp"

namespace tqr::sim {
namespace {

TEST(MultiNode, ClusterPresetShape) {
  const Platform c2 = paper_cluster(2);
  EXPECT_EQ(c2.num_devices(), 8);
  EXPECT_EQ(c2.num_nodes(), 2);
  EXPECT_EQ(c2.node(0), 0);
  EXPECT_EQ(c2.node(4), 1);
  EXPECT_EQ(paper_cluster(1).num_nodes(), 1);
  EXPECT_THROW(paper_cluster(5), tqr::InvalidArgument);
  EXPECT_THROW(paper_cluster(0), tqr::InvalidArgument);
}

TEST(MultiNode, SingleNodePlatformHasOneNode) {
  const Platform p = paper_platform();
  EXPECT_EQ(p.num_nodes(), 1);
  EXPECT_EQ(p.node(3), 0);
}

TEST(MultiNode, IntraNodeLinkFasterThanInterNode) {
  const Platform c2 = paper_cluster(2);
  const LinkParams intra = c2.link(1, 2);   // both node 0
  const LinkParams inter = c2.link(1, 5);   // node 0 -> node 1
  EXPECT_LT(intra.latency_us, inter.latency_us);
  EXPECT_GT(intra.gbytes_per_s, inter.gbytes_per_s);
  EXPECT_GT(inter.transfer_time_s(1 << 20), intra.transfer_time_s(1 << 20));
}

TEST(MultiNode, CrossNodeScheduleSlowerThanIntraNode) {
  // Same work split over two devices: on one node vs across nodes.
  const int nt = 12;
  dag::TaskGraph g = dag::build_tiled_qr_graph(nt, nt, dag::Elimination::kTt);
  const Platform c2 = paper_cluster(2);
  auto split = [&](int second_dev) {
    std::vector<std::uint8_t> assign(g.size());
    for (std::size_t t = 0; t < g.size(); ++t) {
      const dag::Task& task = g.task(t);
      const auto step = dag::step_of(task.op);
      const bool update = step == dag::Step::kUpdateTriangulation ||
                          step == dag::Step::kUpdateElimination;
      assign[t] = static_cast<std::uint8_t>(
          update && task.j % 2 ? second_dev : 1);  // main = GTX580 node 0
    }
    return assign;
  };
  SimOptions opts;
  const auto intra = simulate(g, split(2), c2, nt, nt, opts);   // 680, node 0
  const auto inter = simulate(g, split(6), c2, nt, nt, opts);   // 680, node 1
  EXPECT_GT(inter.makespan_s, intra.makespan_s);
  EXPECT_GT(inter.comm_s, intra.comm_s);
}

TEST(MultiNode, SeparateNodeBusesDoNotContend) {
  // Two independent transfers on different node buses must overlap: run the
  // same single-node schedule on a cluster and confirm node-0-only traffic
  // costs the same as on the standalone node.
  const int nt = 8;
  dag::TaskGraph g = dag::build_tiled_qr_graph(nt, nt, dag::Elimination::kTt);
  core::PlanConfig pc;
  pc.tile_size = 16;
  pc.count_policy = core::CountPolicy::kAll;
  pc.main_policy = core::MainPolicy::kFixed;
  pc.fixed_main = 1;
  const Platform one = paper_platform();
  core::Plan plan(one, nt, nt, pc);
  const auto base = core::simulate_on_graph(g, plan, one);

  Platform c2 = paper_cluster(2);
  const auto assign = plan.assignment(g);  // devices 0..3 = node 0 of c2
  const auto clustered = simulate(g, assign, c2, nt, nt, SimOptions{});
  EXPECT_NEAR(clustered.makespan_s, base.makespan_s, base.makespan_s * 1e-9);
}

TEST(MultiNode, OptimizerChargesInterNodeLinks) {
  const Platform c2 = paper_cluster(2);
  const auto profiles =
      core::profile_platform(c2, 16, dag::Elimination::kTt);
  const auto choice =
      core::select_device_count(profiles, c2, /*main=*/1, 100, 100, 16, 4);
  // Ordered list: main, then 4x GTX680 (two remote), GTX580 remote, CPUs.
  ASSERT_GE(choice.predicted_tcomm.size(), 4u);
  // Adding a remote participant must cost more than adding a local one:
  // find the first prefix that includes a cross-node device and check the
  // Tcomm increment jumps.
  double prev_increment = 0;
  bool saw_jump = false;
  for (std::size_t p = 2; p < choice.predicted_tcomm.size(); ++p) {
    const double inc =
        choice.predicted_tcomm[p - 1] - choice.predicted_tcomm[p - 2];
    if (prev_increment > 0 && inc > 3 * prev_increment) saw_jump = true;
    prev_increment = inc;
  }
  EXPECT_TRUE(saw_jump);
}

TEST(MultiNode, PlanOnClusterPrefersLocalDevices) {
  // With the link-aware optimizer, moderate sizes should not recruit
  // cross-node devices: the chosen prefix stays within node 0's GPUs.
  const Platform c2 = paper_cluster(2);
  core::PlanConfig pc;
  pc.tile_size = 16;
  pc.main_policy = core::MainPolicy::kFixed;
  pc.fixed_main = 1;
  core::Plan plan(c2, 80, 80, pc);
  for (int dev : plan.participants())
    EXPECT_EQ(c2.node(dev), 0) << "recruited remote device " << dev;
}

TEST(MultiNode, EndToEndClusterSimulationRuns) {
  core::PlanConfig pc;
  pc.tile_size = 16;
  pc.count_policy = core::CountPolicy::kAll;
  pc.main_policy = core::MainPolicy::kFixed;
  pc.fixed_main = 1;
  const auto run = core::simulate_tiled_qr(paper_cluster(2), 640, 640, pc);
  EXPECT_GT(run.result.makespan_s, 0);
  EXPECT_EQ(run.plan.participants().size(), 8u);
}

}  // namespace
}  // namespace tqr::sim
