// Multi-node extension (paper §VIII future work): node-aware links, the
// per-node bus channels, and the link-aware device-count optimizer.
#include <gtest/gtest.h>

#include "core/plan.hpp"
#include "core/simulate.hpp"
#include "dag/tiled_qr_dag.hpp"
#include "sim/des.hpp"
#include "sim/platform.hpp"

namespace tqr::sim {
namespace {

TEST(MultiNode, ClusterPresetShape) {
  const Platform c2 = paper_cluster(2);
  EXPECT_EQ(c2.num_devices(), 8);
  EXPECT_EQ(c2.num_nodes(), 2);
  EXPECT_EQ(c2.node(0), 0);
  EXPECT_EQ(c2.node(4), 1);
  EXPECT_EQ(paper_cluster(1).num_nodes(), 1);
  EXPECT_THROW(paper_cluster(5), tqr::InvalidArgument);
  EXPECT_THROW(paper_cluster(0), tqr::InvalidArgument);
}

TEST(MultiNode, SingleNodePlatformHasOneNode) {
  const Platform p = paper_platform();
  EXPECT_EQ(p.num_nodes(), 1);
  EXPECT_EQ(p.node(3), 0);
}

TEST(MultiNode, IntraNodeLinkFasterThanInterNode) {
  const Platform c2 = paper_cluster(2);
  const LinkParams intra = c2.link(1, 2);   // both node 0
  const LinkParams inter = c2.link(1, 5);   // node 0 -> node 1
  EXPECT_LT(intra.latency_us, inter.latency_us);
  EXPECT_GT(intra.gbytes_per_s, inter.gbytes_per_s);
  EXPECT_GT(inter.transfer_time_s(1 << 20), intra.transfer_time_s(1 << 20));
}

TEST(MultiNode, CrossNodeScheduleSlowerThanIntraNode) {
  // Same work split over two devices: on one node vs across nodes.
  const int nt = 12;
  dag::TaskGraph g = dag::build_tiled_qr_graph(nt, nt, dag::Elimination::kTt);
  const Platform c2 = paper_cluster(2);
  auto split = [&](int second_dev) {
    std::vector<std::uint8_t> assign(g.size());
    for (std::size_t t = 0; t < g.size(); ++t) {
      const dag::Task& task = g.task(t);
      const auto step = dag::step_of(task.op);
      const bool update = step == dag::Step::kUpdateTriangulation ||
                          step == dag::Step::kUpdateElimination;
      assign[t] = static_cast<std::uint8_t>(
          update && task.j % 2 ? second_dev : 1);  // main = GTX580 node 0
    }
    return assign;
  };
  SimOptions opts;
  const auto intra = simulate(g, split(2), c2, nt, nt, opts);   // 680, node 0
  const auto inter = simulate(g, split(6), c2, nt, nt, opts);   // 680, node 1
  EXPECT_GT(inter.makespan_s, intra.makespan_s);
  EXPECT_GT(inter.comm_s, intra.comm_s);
}

TEST(MultiNode, SeparateNodeBusesDoNotContend) {
  // Two independent transfers on different node buses must overlap: run the
  // same single-node schedule on a cluster and confirm node-0-only traffic
  // costs the same as on the standalone node.
  const int nt = 8;
  dag::TaskGraph g = dag::build_tiled_qr_graph(nt, nt, dag::Elimination::kTt);
  core::PlanConfig pc;
  pc.tile_size = 16;
  pc.count_policy = core::CountPolicy::kAll;
  pc.main_policy = core::MainPolicy::kFixed;
  pc.fixed_main = 1;
  const Platform one = paper_platform();
  core::Plan plan(one, nt, nt, pc);
  const auto base = core::simulate_on_graph(g, plan, one);

  Platform c2 = paper_cluster(2);
  const auto assign = plan.assignment(g);  // devices 0..3 = node 0 of c2
  const auto clustered = simulate(g, assign, c2, nt, nt, SimOptions{});
  EXPECT_NEAR(clustered.makespan_s, base.makespan_s, base.makespan_s * 1e-9);
}

TEST(MultiNode, OptimizerChargesInterNodeLinks) {
  const Platform c2 = paper_cluster(2);
  const auto profiles =
      core::profile_platform(c2, 16, dag::Elimination::kTt);
  const auto choice =
      core::select_device_count(profiles, c2, /*main=*/1, 100, 100, 16, 4);
  // Ordered list: main, then 4x GTX680 (two remote), GTX580 remote, CPUs.
  ASSERT_GE(choice.predicted_tcomm.size(), 4u);
  // Adding a remote participant must cost more than adding a local one:
  // find the first prefix that includes a cross-node device and check the
  // Tcomm increment jumps.
  double prev_increment = 0;
  bool saw_jump = false;
  for (std::size_t p = 2; p < choice.predicted_tcomm.size(); ++p) {
    const double inc =
        choice.predicted_tcomm[p - 1] - choice.predicted_tcomm[p - 2];
    if (prev_increment > 0 && inc > 3 * prev_increment) saw_jump = true;
    prev_increment = inc;
  }
  EXPECT_TRUE(saw_jump);
}

TEST(MultiNode, PlanOnClusterPrefersLocalDevices) {
  // With the link-aware optimizer, moderate sizes should not recruit
  // cross-node devices: the chosen prefix stays within node 0's GPUs.
  const Platform c2 = paper_cluster(2);
  core::PlanConfig pc;
  pc.tile_size = 16;
  pc.main_policy = core::MainPolicy::kFixed;
  pc.fixed_main = 1;
  core::Plan plan(c2, 80, 80, pc);
  for (int dev : plan.participants())
    EXPECT_EQ(c2.node(dev), 0) << "recruited remote device " << dev;
}

TEST(MultiNode, PerPairLinkOverridesAreDirectional) {
  Platform c2 = paper_cluster(2);
  const LinkParams fallback = c2.link(1, 5);  // node 0 -> node 1, uniform
  LinkParams fat;
  fat.latency_us = 2.0;
  fat.gbytes_per_s = 40.0;
  c2.set_inter_link(0, 1, fat, /*symmetric=*/false);
  EXPECT_DOUBLE_EQ(c2.link(1, 5).gbytes_per_s, 40.0);
  // The reverse direction keeps the uniform fabric parameters.
  EXPECT_DOUBLE_EQ(c2.link(5, 1).gbytes_per_s, fallback.gbytes_per_s);
  EXPECT_DOUBLE_EQ(c2.link(5, 1).latency_us, fallback.latency_us);
  // Symmetric install writes both directions.
  c2.set_inter_link(1, 0, fat, /*symmetric=*/true);
  EXPECT_DOUBLE_EQ(c2.link(5, 1).gbytes_per_s, 40.0);
  EXPECT_DOUBLE_EQ(c2.link(1, 5).gbytes_per_s, 40.0);
}

TEST(MultiNode, SetInterLinkValidates) {
  Platform c2 = paper_cluster(2);
  LinkParams p;
  p.gbytes_per_s = 1.0;
  EXPECT_THROW(c2.set_inter_link(0, 0, p), tqr::Error);   // intra pair
  EXPECT_THROW(c2.set_inter_link(0, 2, p), tqr::Error);   // out of range
  p.gbytes_per_s = 0;
  EXPECT_THROW(c2.set_inter_link(0, 1, p), tqr::Error);   // bad bandwidth
}

TEST(MultiNode, IntraNodePairsIgnoreInterLinkOverrides) {
  // Regression: an intra-node transfer must never pay inter-node cost, no
  // matter how the inter-node fabric is configured.
  Platform c2 = paper_cluster(2);
  const LinkParams before = c2.link(1, 2);
  LinkParams awful;
  awful.latency_us = 1e6;
  awful.gbytes_per_s = 1e-3;
  c2.set_inter_link(0, 1, awful, /*symmetric=*/true);
  const LinkParams after = c2.link(1, 2);   // both node 0
  EXPECT_DOUBLE_EQ(after.latency_us, before.latency_us);
  EXPECT_DOUBLE_EQ(after.gbytes_per_s, before.gbytes_per_s);
  const LinkParams remote = c2.link(5, 6);  // both node 1
  EXPECT_DOUBLE_EQ(remote.latency_us, before.latency_us);
  EXPECT_DOUBLE_EQ(remote.gbytes_per_s, before.gbytes_per_s);
}

TEST(MultiNode, InterNodeBandwidthInvisibleToIntraNodeSchedules) {
  // A schedule confined to node 0 must simulate to the same makespan
  // regardless of the inter-node fabric: crippling the network may not
  // perturb intra-node runs.
  const int nt = 8;
  dag::TaskGraph g = dag::build_tiled_qr_graph(nt, nt, dag::Elimination::kTt);
  core::PlanConfig pc;
  pc.tile_size = 16;
  pc.count_policy = core::CountPolicy::kAll;
  pc.main_policy = core::MainPolicy::kFixed;
  pc.fixed_main = 1;
  core::Plan plan(paper_platform(), nt, nt, pc);
  const auto assign = plan.assignment(g);  // devices 0..3 only
  const auto fast = simulate(g, assign, paper_cluster(2, 100.0, 1.0), nt, nt,
                             SimOptions{});
  const auto slow = simulate(g, assign, paper_cluster(2, 0.001, 1e5), nt, nt,
                             SimOptions{});
  EXPECT_DOUBLE_EQ(slow.makespan_s, fast.makespan_s);
}

TEST(MultiNode, AsymmetricLinkDegradationSlowsCrossNodeSchedule) {
  // Cross-node schedules move data in both directions; degrading either
  // direction of the pair must show up in the makespan.
  const int nt = 8;
  dag::TaskGraph g = dag::build_tiled_qr_graph(nt, nt, dag::Elimination::kTt);
  std::vector<std::uint8_t> assign(g.size());
  for (std::size_t t = 0; t < g.size(); ++t) {
    const dag::Task& task = g.task(t);
    const auto step = dag::step_of(task.op);
    const bool update = step == dag::Step::kUpdateTriangulation ||
                        step == dag::Step::kUpdateElimination;
    assign[t] = static_cast<std::uint8_t>(update && task.j % 2 ? 6 : 1);
  }
  const Platform base = paper_cluster(2, 4.0, 25.0);
  LinkParams trickle;
  trickle.latency_us = 5000.0;
  trickle.gbytes_per_s = 0.01;
  Platform fwd = base;   // node 0 -> node 1 degraded
  fwd.set_inter_link(0, 1, trickle, /*symmetric=*/false);
  Platform rev = base;   // node 1 -> node 0 degraded
  rev.set_inter_link(1, 0, trickle, /*symmetric=*/false);
  const auto opts = SimOptions{};
  const double t_base = simulate(g, assign, base, nt, nt, opts).makespan_s;
  const double t_fwd = simulate(g, assign, fwd, nt, nt, opts).makespan_s;
  const double t_rev = simulate(g, assign, rev, nt, nt, opts).makespan_s;
  EXPECT_GT(t_fwd, t_base);
  EXPECT_GT(t_rev, t_base);
}

TEST(MultiNode, EndToEndClusterSimulationRuns) {
  core::PlanConfig pc;
  pc.tile_size = 16;
  pc.count_policy = core::CountPolicy::kAll;
  pc.main_policy = core::MainPolicy::kFixed;
  pc.fixed_main = 1;
  const auto run = core::simulate_tiled_qr(paper_cluster(2), 640, 640, pc);
  EXPECT_GT(run.result.makespan_s, 0);
  EXPECT_EQ(run.plan.participants().size(), 8u);
}

TEST(MultiNode, DegradeInterLinkCompoundsOnTheFabric) {
  Platform p = paper_cluster(2, 4.0, 25.0);
  // The getter reports the uniform CommModel fabric before any override.
  LinkParams l = p.inter_link(0, 1);
  EXPECT_DOUBLE_EQ(l.gbytes_per_s, 4.0);
  EXPECT_DOUBLE_EQ(l.latency_us, 25.0);

  p.degrade_inter_link(0, 1, 4.0, 100.0);
  l = p.inter_link(0, 1);
  EXPECT_DOUBLE_EQ(l.gbytes_per_s, 1.0);
  EXPECT_DOUBLE_EQ(l.latency_us, 125.0);
  // Symmetric by default; further degradation compounds, and an asymmetric
  // call leaves the reverse direction alone.
  EXPECT_DOUBLE_EQ(p.inter_link(1, 0).gbytes_per_s, 1.0);
  p.degrade_inter_link(0, 1, 2.0, 0.0, /*symmetric=*/false);
  EXPECT_DOUBLE_EQ(p.inter_link(0, 1).gbytes_per_s, 0.5);
  EXPECT_DOUBLE_EQ(p.inter_link(1, 0).gbytes_per_s, 1.0);

  // Device-level transfers ride the degraded fabric.
  const int per_node = p.num_devices() / 2;
  EXPECT_DOUBLE_EQ(p.link(0, per_node).gbytes_per_s, 0.5);
  EXPECT_DOUBLE_EQ(p.link(per_node, 0).gbytes_per_s, 1.0);

  EXPECT_THROW(p.inter_link(0, 0), tqr::InvalidArgument);
  EXPECT_THROW(p.degrade_inter_link(0, 1, 0.5, 0.0), tqr::InvalidArgument);
}

}  // namespace
}  // namespace tqr::sim
