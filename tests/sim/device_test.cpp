#include "sim/device.hpp"

#include <gtest/gtest.h>

#include "sim/platform.hpp"

namespace tqr::sim {
namespace {

TEST(DeviceModel, KernelTimePositiveAndMonotoneInTileSize) {
  for (const DeviceSpec& d :
       {make_cpu_i7_3820(), make_gtx580(), make_gtx680()}) {
    for (dag::Op op : {dag::Op::kGeqrt, dag::Op::kTsqrt, dag::Op::kTtqrt,
                       dag::Op::kUnmqr, dag::Op::kTsmqr, dag::Op::kTtmqr}) {
      double prev = 0;
      for (int b = 4; b <= 64; b += 4) {
        const double t = d.kernel_time_s(op, b);
        EXPECT_GT(t, 0) << d.name;
        EXPECT_GT(t, prev) << d.name << " op not monotone at b=" << b;
        prev = t;
      }
    }
  }
}

TEST(DeviceModel, Fig4Ordering_TriangulationSlowerThanUpdate) {
  // Fig. 4: on every device T > E > UT/UE per single tile.
  for (const DeviceSpec& d :
       {make_cpu_i7_3820(), make_gtx580(), make_gtx680()}) {
    for (int b : {8, 16, 28}) {
      const double t = d.kernel_time_s(dag::Op::kGeqrt, b);
      const double e = d.kernel_time_s(dag::Op::kTsqrt, b);
      const double u = d.kernel_time_s(dag::Op::kTsmqr, b);
      EXPECT_GT(t, e) << d.name << " b=" << b;
      EXPECT_GT(e, u) << d.name << " b=" << b;
    }
  }
}

TEST(DeviceModel, Fig4Ordering_CpuSlowestPerKernel) {
  const auto cpu = make_cpu_i7_3820();
  const auto g580 = make_gtx580();
  const auto g680 = make_gtx680();
  for (int b : {8, 16, 28}) {
    for (dag::Op op : {dag::Op::kGeqrt, dag::Op::kTsqrt, dag::Op::kTsmqr}) {
      EXPECT_GT(cpu.kernel_time_s(op, b), g580.kernel_time_s(op, b));
      EXPECT_GT(cpu.kernel_time_s(op, b), g680.kernel_time_s(op, b));
    }
  }
}

TEST(DeviceModel, Fig4Ordering_Gtx580FasterKernelsThanGtx680) {
  // Per single kernel the GTX580 beats the GTX680 on T and E — the paper's
  // rationale for picking it as the main computing device.
  const auto g580 = make_gtx580();
  const auto g680 = make_gtx680();
  for (int b : {8, 16, 28}) {
    EXPECT_LT(g580.kernel_time_s(dag::Op::kGeqrt, b),
              g680.kernel_time_s(dag::Op::kGeqrt, b));
    EXPECT_LT(g580.kernel_time_s(dag::Op::kTsqrt, b),
              g680.kernel_time_s(dag::Op::kTsqrt, b));
  }
}

TEST(DeviceModel, Gtx680UpdateThroughputRoughlyTripleGtx580) {
  // 3x the cores must buy ~3x saturated update throughput (guide ratio).
  const double r580 = make_gtx580().update_throughput_per_s(16);
  const double r680 = make_gtx680().update_throughput_per_s(16);
  EXPECT_GT(r680 / r580, 2.0);
  EXPECT_LT(r680 / r580, 4.5);
}

TEST(DeviceModel, CpuUpdateThroughputNegligible) {
  const double rcpu = make_cpu_i7_3820().update_throughput_per_s(16);
  const double r580 = make_gtx580().update_throughput_per_s(16);
  EXPECT_LT(rcpu, r580 / 100);
}

TEST(DeviceModel, TtEliminationCheaperThanTs) {
  for (const DeviceSpec& d : {make_gtx580(), make_gtx680()}) {
    EXPECT_LT(d.kernel_time_s(dag::Op::kTtqrt, 16),
              d.kernel_time_s(dag::Op::kTsqrt, 16));
    EXPECT_LT(d.kernel_time_s(dag::Op::kTtmqr, 16),
              d.kernel_time_s(dag::Op::kTsmqr, 16));
  }
}

TEST(DeviceModel, AmortizedIsKernelOverSlots) {
  const auto d = make_gtx580();
  EXPECT_DOUBLE_EQ(d.amortized_time_s(dag::Op::kTsmqr, 16),
                   d.kernel_time_s(dag::Op::kTsmqr, 16) / d.slots);
}

TEST(KernelFlops, MatchesFlopTables) {
  // Apply kernels share the la/flops counts; factor kernels keep the
  // classical calibration proxy (see kernel_flops), which excludes the
  // full-T build la::flops_* now charges.
  EXPECT_DOUBLE_EQ(kernel_flops(dag::Op::kTtmqr, 16), la::flops_ttmqr(16));
  EXPECT_DOUBLE_EQ(kernel_flops(dag::Op::kTsmqr, 16), la::flops_tsmqr(16));
  EXPECT_DOUBLE_EQ(kernel_flops(dag::Op::kGeqrt, 16),
                   (5.0 / 3.0) * 16.0 * 16.0 * 16.0);
  EXPECT_LT(kernel_flops(dag::Op::kGeqrt, 16), la::flops_geqrt(16));
}

TEST(Platform, PaperPlatformShape) {
  const Platform p = paper_platform();
  ASSERT_EQ(p.num_devices(), 4);
  EXPECT_EQ(p.device(0).kind, DeviceKind::kCpu);
  EXPECT_EQ(p.device(1).name, "GTX580");
  EXPECT_EQ(p.device(2).name, "GTX680");
  EXPECT_EQ(p.device(3).name, "GTX680");
  // Fig. 8's x axis: 4, 516, 2052, 3588 cores.
  EXPECT_EQ(p.total_cores(), 3588);
  EXPECT_EQ(paper_platform_with_gpus(0).total_cores(), 4);
  EXPECT_EQ(paper_platform_with_gpus(1).total_cores(), 516);
  EXPECT_EQ(paper_platform_with_gpus(2).total_cores(), 2052);
}

TEST(Platform, GpuCountOutOfRangeRejected) {
  EXPECT_THROW(paper_platform_with_gpus(4), tqr::InvalidArgument);
  EXPECT_THROW(paper_platform_with_gpus(-1), tqr::InvalidArgument);
}

TEST(CommModel, TransferTimeLatencyPlusBandwidth) {
  CommModel c;
  c.latency_us = 10.0;
  c.gbytes_per_s = 1.0;
  EXPECT_NEAR(c.transfer_time_s(0), 10e-6, 1e-12);
  EXPECT_NEAR(c.transfer_time_s(1000000000), 1.0 + 10e-6, 1e-9);
}

}  // namespace
}  // namespace tqr::sim
