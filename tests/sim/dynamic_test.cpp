// Dynamic (runtime) task placement in the simulator.
#include <gtest/gtest.h>

#include "core/simulate.hpp"
#include "dag/tiled_qr_dag.hpp"
#include "sim/des.hpp"

namespace tqr::sim {
namespace {

std::vector<std::uint8_t> dynamic_updates(const dag::TaskGraph& g, int main) {
  std::vector<std::uint8_t> assign(g.size());
  for (dag::task_id t = 0; t < static_cast<dag::task_id>(g.size()); ++t) {
    const auto step = dag::step_of(g.task(t).op);
    const bool panel = step == dag::Step::kTriangulation ||
                       step == dag::Step::kElimination;
    assign[t] = panel ? static_cast<std::uint8_t>(main) : kDynamicDevice;
  }
  return assign;
}

TEST(DynamicPlacement, CompletesEveryTask) {
  dag::TaskGraph g = dag::build_tiled_qr_graph(8, 8, dag::Elimination::kTt);
  const Platform p = paper_platform();
  const auto assign = dynamic_updates(g, 1);
  const auto r = simulate(g, assign, p, 8, 8, SimOptions{});
  EXPECT_EQ(r.tasks, static_cast<std::int64_t>(g.size()));
  EXPECT_GT(r.makespan_s, 0);
}

TEST(DynamicPlacement, UsesMultipleDevices) {
  dag::TaskGraph g = dag::build_tiled_qr_graph(12, 12, dag::Elimination::kTt);
  const Platform p = paper_platform();
  const auto assign = dynamic_updates(g, 1);
  runtime::Trace trace;
  SimOptions opts;
  opts.trace = &trace;
  simulate(g, assign, p, 12, 12, opts);
  std::vector<int> per_device(p.num_devices(), 0);
  for (const auto& e : trace.events()) ++per_device[e.device];
  int used = 0;
  for (int c : per_device) used += (c > 0);
  EXPECT_GE(used, 2);
}

TEST(DynamicPlacement, RespectsDependences) {
  dag::TaskGraph g = dag::build_tiled_qr_graph(6, 6, dag::Elimination::kTs);
  const Platform p = paper_platform();
  const auto assign = dynamic_updates(g, 1);
  runtime::Trace trace;
  SimOptions opts;
  opts.trace = &trace;
  simulate(g, assign, p, 6, 6, opts);
  std::vector<double> start(g.size()), end(g.size());
  for (const auto& e : trace.events()) {
    start[e.task] = e.start_s;
    end[e.task] = e.end_s;
  }
  for (dag::task_id t = 0; t < static_cast<dag::task_id>(g.size()); ++t)
    for (auto it = g.predecessors_begin(t); it != g.predecessors_end(t); ++it)
      EXPECT_GE(start[t], end[*it] - 1e-15);
}

TEST(DynamicPlacement, MonitorOverheadSlowsItDown) {
  dag::TaskGraph g = dag::build_tiled_qr_graph(10, 10, dag::Elimination::kTt);
  const Platform p = paper_platform();
  const auto assign = dynamic_updates(g, 1);
  SimOptions cheap, pricey;
  cheap.monitor_overhead_us = 0;
  pricey.monitor_overhead_us = 50;
  const auto fast = simulate(g, assign, p, 10, 10, cheap);
  const auto slow = simulate(g, assign, p, 10, 10, pricey);
  EXPECT_GT(slow.makespan_s, fast.makespan_s);
}

TEST(DynamicPlacement, PinnedTasksStayPinned) {
  dag::TaskGraph g = dag::build_tiled_qr_graph(6, 6, dag::Elimination::kTt);
  const Platform p = paper_platform();
  const auto assign = dynamic_updates(g, 1);
  runtime::Trace trace;
  SimOptions opts;
  opts.trace = &trace;
  simulate(g, assign, p, 6, 6, opts);
  for (const auto& e : trace.events()) {
    const auto step = dag::step_of(e.op);
    if (step == dag::Step::kTriangulation ||
        step == dag::Step::kElimination) {
      EXPECT_EQ(e.device, 1) << "panel task migrated";
    }
  }
}

TEST(DynamicPlacement, DeterministicAcrossRuns) {
  dag::TaskGraph g = dag::build_tiled_qr_graph(8, 8, dag::Elimination::kTt);
  const Platform p = paper_platform();
  const auto assign = dynamic_updates(g, 1);
  const auto a = simulate(g, assign, p, 8, 8, SimOptions{});
  const auto b = simulate(g, assign, p, 8, 8, SimOptions{});
  EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);
  EXPECT_EQ(a.transfers, b.transfers);
}

}  // namespace
}  // namespace tqr::sim
