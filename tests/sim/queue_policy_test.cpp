#include <gtest/gtest.h>

#include "core/simulate.hpp"
#include "dag/tiled_qr_dag.hpp"
#include "sim/des.hpp"

namespace tqr::sim {
namespace {

struct Scenario {
  dag::TaskGraph graph;
  Platform platform;
  std::vector<std::uint8_t> assignment;
  std::int32_t nt;
};

Scenario constrained_scenario(int nt) {
  Scenario s{dag::build_tiled_qr_graph(nt, nt, dag::Elimination::kTt),
          paper_platform(),
          {},
          nt};
  for (auto& dev : s.platform.devices) dev.slots = std::max(1, dev.slots / 32);
  core::PlanConfig pc;
  pc.tile_size = 16;
  pc.count_policy = core::CountPolicy::kAll;
  pc.main_policy = core::MainPolicy::kFixed;
  pc.fixed_main = 1;
  core::Plan plan(s.platform, nt, nt, pc);
  s.assignment = plan.assignment(s.graph);
  return s;
}

double run_policy(const Scenario& s, QueuePolicy policy) {
  SimOptions opts;
  opts.tile_size = 16;
  opts.queue_policy = policy;
  return simulate(s.graph, s.assignment, s.platform, s.nt, s.nt, opts)
      .makespan_s;
}

TEST(QueuePolicy, AllPoliciesProduceValidBoundedMakespans) {
  const Scenario s = constrained_scenario(10);
  // Serial upper bound on the slowest device.
  double serial = 0;
  for (const auto& t : s.graph.tasks())
    serial += s.platform.device(0).kernel_time_s(t.op, 16);
  for (QueuePolicy p : {QueuePolicy::kPanelOrder, QueuePolicy::kFifo,
                        QueuePolicy::kCriticalPath}) {
    const double m = run_policy(s, p);
    EXPECT_GT(m, 0);
    EXPECT_LT(m, serial);
  }
}

TEST(QueuePolicy, DeterministicPerPolicy) {
  const Scenario s = constrained_scenario(8);
  for (QueuePolicy p : {QueuePolicy::kPanelOrder, QueuePolicy::kFifo,
                        QueuePolicy::kCriticalPath}) {
    EXPECT_DOUBLE_EQ(run_policy(s, p), run_policy(s, p));
  }
}

TEST(QueuePolicy, CriticalPathAtLeastAsGoodWhenOversubscribed) {
  // Not a theorem for general DAGs, but on the tiled QR DAGs we sweep the
  // longest-path-first order should never lose noticeably to panel order.
  for (int nt : {8, 12, 16}) {
    const Scenario s = constrained_scenario(nt);
    const double panel = run_policy(s, QueuePolicy::kPanelOrder);
    const double crit = run_policy(s, QueuePolicy::kCriticalPath);
    EXPECT_LE(crit, panel * 1.02) << "nt=" << nt;
  }
}

TEST(QueuePolicy, PoliciesAgreeWhenSlotsAreAbundant) {
  // With the full paper platform nothing ever queues, so all policies land
  // on the same makespan.
  const int nt = 10;
  Scenario s{dag::build_tiled_qr_graph(nt, nt, dag::Elimination::kTt),
          paper_platform(),
          {},
          nt};
  core::PlanConfig pc;
  pc.tile_size = 16;
  pc.count_policy = core::CountPolicy::kAll;
  pc.main_policy = core::MainPolicy::kFixed;
  pc.fixed_main = 1;
  core::Plan plan(s.platform, nt, nt, pc);
  s.assignment = plan.assignment(s.graph);
  const double a = run_policy(s, QueuePolicy::kPanelOrder);
  const double b = run_policy(s, QueuePolicy::kFifo);
  const double c = run_policy(s, QueuePolicy::kCriticalPath);
  EXPECT_NEAR(a, b, a * 1e-6);
  EXPECT_NEAR(a, c, a * 1e-6);
}

}  // namespace
}  // namespace tqr::sim
