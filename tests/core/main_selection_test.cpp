#include "core/main_selection.hpp"

#include <gtest/gtest.h>

#include "sim/platform.hpp"

namespace tqr::core {
namespace {

std::vector<DeviceProfile> paper_profiles(int b = 16) {
  return profile_platform(sim::paper_platform(), b, dag::Elimination::kTt);
}

TEST(MainSelection, PaperPlatformPicksGtx580) {
  // §VI-B: "Therefore, our selection is GTX580" (device index 1).
  const auto sel = select_main_device(paper_profiles(), 200, 200);
  EXPECT_EQ(sel.main_device, 1);
  EXPECT_FALSE(sel.fallback);
}

TEST(MainSelection, CpuNeverACandidateOnPaperPlatform) {
  // "the triangulation and elimination speed of the CPU is too slow".
  const auto sel = select_main_device(paper_profiles(), 200, 200);
  for (int c : sel.candidates) EXPECT_NE(c, 0);
}

TEST(MainSelection, BothGpuKindsAreCandidatesOnLargeGrids) {
  const auto sel = select_main_device(paper_profiles(), 500, 500);
  EXPECT_NE(std::find(sel.candidates.begin(), sel.candidates.end(), 1),
            sel.candidates.end());
  EXPECT_NE(std::find(sel.candidates.begin(), sel.candidates.end(), 2),
            sel.candidates.end());
}

TEST(MainSelection, PicksMinimumUpdateSpeedCandidate) {
  // Among candidates the *slowest updater* is chosen so fast updaters stay
  // on update duty: with two candidate GPUs, the GTX580 (slower updates)
  // must win over the GTX680.
  const auto profiles = paper_profiles();
  const auto sel = select_main_device(profiles, 300, 300);
  ASSERT_GE(sel.candidates.size(), 2u);
  double winner_thr = 0;
  for (const auto& p : profiles)
    if (p.device == sel.main_device) winner_thr = p.update_throughput;
  for (int c : sel.candidates) {
    for (const auto& p : profiles) {
      if (p.device == c) {
        EXPECT_GE(p.update_throughput, winner_thr);
      }
    }
  }
}

TEST(MainSelection, SingleDeviceIsTrivialMain) {
  const auto profiles =
      profile_platform(sim::paper_platform_with_gpus(0), 16,
                       dag::Elimination::kTt);
  const auto sel = select_main_device(profiles, 10, 10);
  EXPECT_EQ(sel.main_device, 0);
}

TEST(MainSelection, FallbackPicksFastestTePlusE) {
  // Two identical slow updaters with huge T/E cost: nobody passes the
  // candidate test on a large grid => fallback to best T+E device.
  DeviceProfile a, b;
  a.device = 0;
  a.slots = 1;
  a.kernel = {1.0, 1.0, 1e-6, 1e-6};
  a.amortized = a.kernel;
  a.update_throughput = 2e6 / 2;
  b.device = 1;
  b.slots = 1;
  b.kernel = {2.0, 2.0, 1e-6, 1e-6};
  b.amortized = b.kernel;
  b.update_throughput = 2e6 / 2;
  const auto sel = select_main_device({a, b}, 1000, 1000);
  EXPECT_TRUE(sel.fallback);
  EXPECT_EQ(sel.main_device, 0);
}

TEST(MainSelection, TinyGridStillReturnsADevice) {
  const auto sel = select_main_device(paper_profiles(), 2, 2);
  EXPECT_GE(sel.main_device, 0);
  EXPECT_LE(sel.main_device, 3);
}

}  // namespace
}  // namespace tqr::core
