#include "core/min_norm.hpp"

#include <gtest/gtest.h>

#include "la/checks.hpp"

namespace tqr::core {
namespace {

using la::index_t;
using la::Matrix;

TEST(MinNorm, SatisfiesTheConstraints) {
  const index_t m = 16, n = 48, b = 8;
  auto a = Matrix<double>::random(m, n, 1);
  auto rhs = Matrix<double>::random(m, 1, 2);
  auto x = min_norm_solve<double>(a, rhs, b);
  ASSERT_EQ(x.rows(), n);
  Matrix<double> ax(m, 1);
  la::gemm<double>(la::Trans::kNoTrans, la::Trans::kNoTrans, 1.0, a.view(),
                   x.view(), 0.0, ax.view());
  for (index_t i = 0; i < m; ++i) EXPECT_NEAR(ax(i, 0), rhs(i, 0), 1e-9);
}

TEST(MinNorm, SolutionIsInRowSpace) {
  // The minimum-norm solution lies in range(A^T): its component orthogonal
  // to every row of A must vanish. Equivalent check: x = A^T w for some w,
  // i.e. the residual of projecting x onto range(A^T) is zero. Verify via
  // x ⟂ null(A): for any z with A z = 0, x^T z = 0.
  const index_t m = 8, n = 24, b = 8;
  auto a = Matrix<double>::random(m, n, 3);
  auto rhs = Matrix<double>::random(m, 1, 4);
  auto x = min_norm_solve<double>(a, rhs, b);

  // Build a null-space vector: take a random v, subtract its row-space
  // component using the same LQ machinery (project via min_norm of A v).
  auto v = Matrix<double>::random(n, 1, 5);
  Matrix<double> av(m, 1);
  la::gemm<double>(la::Trans::kNoTrans, la::Trans::kNoTrans, 1.0, a.view(),
                   v.view(), 0.0, av.view());
  auto v_row = min_norm_solve<double>(a, av, b);  // row-space part of v
  Matrix<double> z(n, 1);
  for (index_t i = 0; i < n; ++i) z(i, 0) = v(i, 0) - v_row(i, 0);
  // z is (numerically) in the null space:
  Matrix<double> az(m, 1);
  la::gemm<double>(la::Trans::kNoTrans, la::Trans::kNoTrans, 1.0, a.view(),
                   z.view(), 0.0, az.view());
  EXPECT_LT(la::norm_max<double>(az.view()), 1e-9);
  // and x is orthogonal to it:
  double dot = 0;
  for (index_t i = 0; i < n; ++i) dot += x(i, 0) * z(i, 0);
  EXPECT_NEAR(dot, 0.0, 1e-9);
}

TEST(MinNorm, SmallerNormThanAnyPerturbedSolution) {
  const index_t m = 8, n = 16, b = 8;
  auto a = Matrix<double>::random(m, n, 6);
  auto rhs = Matrix<double>::random(m, 1, 7);
  auto x = min_norm_solve<double>(a, rhs, b);
  const double norm_x = la::norm_frobenius<double>(x.view());
  // Any x + z with z in null(A) also solves the system but must be longer.
  auto v = Matrix<double>::random(n, 1, 8);
  Matrix<double> av(m, 1);
  la::gemm<double>(la::Trans::kNoTrans, la::Trans::kNoTrans, 1.0, a.view(),
                   v.view(), 0.0, av.view());
  auto v_row = min_norm_solve<double>(a, av, b);
  Matrix<double> alt = x;
  for (index_t i = 0; i < n; ++i) alt(i, 0) += v(i, 0) - v_row(i, 0);
  EXPECT_GT(la::norm_frobenius<double>(alt.view()), norm_x);
}

TEST(MinNorm, MultipleRightHandSides) {
  const index_t m = 16, n = 32, b = 8;
  auto a = Matrix<double>::random(m, n, 9);
  auto rhs = Matrix<double>::random(m, 3, 10);
  auto x = min_norm_solve<double>(a, rhs, b);
  Matrix<double> ax(m, 3);
  la::gemm<double>(la::Trans::kNoTrans, la::Trans::kNoTrans, 1.0, a.view(),
                   x.view(), 0.0, ax.view());
  for (index_t j = 0; j < 3; ++j)
    for (index_t i = 0; i < m; ++i) EXPECT_NEAR(ax(i, j), rhs(i, j), 1e-9);
}

TEST(MinNorm, TallMatrixRejected) {
  auto a = Matrix<double>::random(16, 8, 11);
  auto rhs = Matrix<double>::random(16, 1, 12);
  EXPECT_THROW(min_norm_solve<double>(a, rhs, 8), tqr::InvalidArgument);
}

}  // namespace
}  // namespace tqr::core
