#include "core/plan.hpp"

#include <gtest/gtest.h>

#include "dag/tiled_qr_dag.hpp"
#include "sim/platform.hpp"

namespace tqr::core {
namespace {

PlanConfig default_config() {
  PlanConfig c;
  c.tile_size = 16;
  return c;
}

TEST(Plan, AutoPolicySelectsGtx580MainOnPaperPlatform) {
  Plan plan(sim::paper_platform(), 100, 100, default_config());
  EXPECT_EQ(plan.main_device(), 1);
  EXPECT_EQ(plan.participants()[0], 1);
}

TEST(Plan, FixedMainOverride) {
  PlanConfig c = default_config();
  c.main_policy = MainPolicy::kFixed;
  c.fixed_main = 2;
  Plan plan(sim::paper_platform(), 50, 50, c);
  EXPECT_EQ(plan.main_device(), 2);
}

TEST(Plan, FixedMainOutOfRangeThrows) {
  PlanConfig c = default_config();
  c.main_policy = MainPolicy::kFixed;
  c.fixed_main = 7;
  EXPECT_THROW(Plan(sim::paper_platform(), 50, 50, c), ConfigError);
}

TEST(Plan, FixedCountControlsParticipants) {
  PlanConfig c = default_config();
  c.count_policy = CountPolicy::kFixed;
  c.fixed_count = 2;
  Plan plan(sim::paper_platform(), 50, 50, c);
  EXPECT_EQ(plan.participants().size(), 2u);
}

TEST(Plan, AllPolicyUsesEveryDevice) {
  PlanConfig c = default_config();
  c.count_policy = CountPolicy::kAll;
  Plan plan(sim::paper_platform(), 50, 50, c);
  EXPECT_EQ(plan.participants().size(), 4u);
}

TEST(Plan, ColumnZeroOwnedByMain) {
  Plan plan(sim::paper_platform(), 64, 64, default_config());
  EXPECT_EQ(plan.column_owner()[0], 0);
}

TEST(Plan, ColumnOwnersWithinParticipants) {
  PlanConfig c = default_config();
  c.count_policy = CountPolicy::kAll;
  Plan plan(sim::paper_platform(), 80, 80, c);
  for (int owner : plan.column_owner()) {
    EXPECT_GE(owner, 0);
    EXPECT_LT(owner, static_cast<int>(plan.participants().size()));
  }
}

TEST(Plan, DeviceForRoutesPanelWorkToMain) {
  Plan plan(sim::paper_platform(), 40, 40, default_config());
  dag::Task geqrt;
  geqrt.op = dag::Op::kGeqrt;
  geqrt.k = 3;
  geqrt.i = 5;
  EXPECT_EQ(plan.device_for(geqrt), plan.main_device());
  dag::Task ttqrt;
  ttqrt.op = dag::Op::kTtqrt;
  ttqrt.k = 3;
  ttqrt.i = 6;
  ttqrt.p = 3;
  EXPECT_EQ(plan.device_for(ttqrt), plan.main_device());
}

TEST(Plan, DeviceForRoutesUpdatesToColumnOwner) {
  Plan plan(sim::paper_platform(), 40, 40, default_config());
  dag::Task up;
  up.op = dag::Op::kTtmqr;
  up.k = 0;
  up.i = 2;
  up.p = 0;
  for (std::int16_t j = 1; j < 40; ++j) {
    up.j = j;
    EXPECT_EQ(plan.device_for(up),
              plan.participants()[plan.column_owner()[j]]);
  }
}

TEST(Plan, NoneMainPolicyRoutesPanelWorkToColumnOwner) {
  PlanConfig c = default_config();
  c.main_policy = MainPolicy::kNone;
  c.count_policy = CountPolicy::kAll;
  Plan plan(sim::paper_platform(), 40, 40, c);
  dag::Task geqrt;
  geqrt.op = dag::Op::kGeqrt;
  geqrt.i = 7;
  bool saw_non_main = false;
  for (std::int16_t k = 0; k < 40; ++k) {
    geqrt.k = k;
    const int dev = plan.device_for(geqrt);
    EXPECT_EQ(dev, plan.participants()[plan.column_owner()[k]]);
    if (dev != plan.main_device()) saw_non_main = true;
  }
  EXPECT_TRUE(saw_non_main);
}

TEST(Plan, GuideArrayDistributionFavorsGtx680s) {
  PlanConfig c = default_config();
  c.count_policy = CountPolicy::kFixed;
  c.fixed_count = 3;  // 580 + both 680s
  Plan plan(sim::paper_platform(), 701, 701, c);
  std::vector<int> count(3, 0);
  for (int o : plan.column_owner()) ++count[o];
  // Each 680 should own roughly 3x the 580's columns.
  EXPECT_GT(count[1], 2 * count[0]);
  EXPECT_GT(count[2], 2 * count[0]);
}

TEST(Plan, EvenDistributionBalanced) {
  PlanConfig c = default_config();
  c.count_policy = CountPolicy::kFixed;
  c.fixed_count = 3;
  c.dist_policy = DistPolicy::kEven;
  Plan plan(sim::paper_platform(), 601, 601, c);
  std::vector<int> count(3, 0);
  for (int o : plan.column_owner()) ++count[o];
  EXPECT_NEAR(count[0], count[1], 2);
  EXPECT_NEAR(count[1], count[2], 2);
}

TEST(Plan, AssignmentCoversGraphWithParticipatingDevices) {
  Plan plan(sim::paper_platform(), 12, 12, default_config());
  dag::TaskGraph g =
      dag::build_tiled_qr_graph(12, 12, default_config().elim);
  const auto assign = plan.assignment(g);
  ASSERT_EQ(assign.size(), g.size());
  for (auto d : assign) {
    bool found = false;
    for (int p : plan.participants()) found |= (p == d);
    EXPECT_TRUE(found);
  }
}

TEST(Plan, SummaryMentionsMainAndGrid) {
  const sim::Platform p = sim::paper_platform();
  Plan plan(p, 10, 10, default_config());
  const std::string s = plan.summary(p);
  EXPECT_NE(s.find("GTX580"), std::string::npos);
  EXPECT_NE(s.find("10x10"), std::string::npos);
}

TEST(Plan, HierRoutesEliminationsByRowGroupNode) {
  // On a 2-node cluster with 2 groups, panel-0 eliminations in the top
  // half of the grid run on a node-0 device, bottom half on node 1 — only
  // the cross-group combine's absorbed triangle crosses the network.
  const sim::Platform c2 = sim::paper_cluster(2);
  PlanConfig c = default_config();
  c.elim = dag::Elimination::kHier;
  const std::int32_t mt = 8;
  Plan plan(c2, mt, mt, c);
  EXPECT_EQ(plan.hier_groups(), 2);
  ASSERT_EQ(plan.hier_local_mains().size(), 2u);
  const auto g = dag::build_tiled_qr_graph(mt, mt, dag::Elimination::kHier,
                                           plan.hier_groups());
  for (const dag::Task& t : g.tasks()) {
    if (t.k != 0) continue;
    const auto step = dag::step_of(t.op);
    if (step != dag::Step::kTriangulation &&
        step != dag::Step::kElimination)
      continue;
    const std::int32_t row = step == dag::Step::kTriangulation ? t.i : t.p;
    EXPECT_EQ(c2.node(plan.device_for(t)),
              dag::hier_group_of(row, mt, plan.hier_groups()));
  }
}

TEST(Plan, HierGroupsOverrideAndSummary) {
  PlanConfig c = default_config();
  c.elim = dag::Elimination::kHier;
  c.hier_groups = 3;
  Plan plan(sim::paper_platform(), 9, 9, c);
  EXPECT_EQ(plan.hier_groups(), 3);
  EXPECT_NE(plan.summary(sim::paper_platform()).find("hier_groups=3"),
            std::string::npos);
  // Local mains must be real participating devices.
  for (int d : plan.hier_local_mains()) {
    bool found = false;
    for (int p : plan.participants()) found |= (p == d);
    EXPECT_TRUE(found) << "local main " << d << " not a participant";
  }
}

TEST(Plan, SingleDevicePlatform) {
  Plan plan(sim::paper_platform_with_gpus(0), 8, 8, default_config());
  EXPECT_EQ(plan.main_device(), 0);
  EXPECT_EQ(plan.participants().size(), 1u);
  for (int o : plan.column_owner()) EXPECT_EQ(o, 0);
}

}  // namespace
}  // namespace tqr::core
