#include "core/qr_updater.hpp"

#include <gtest/gtest.h>

#include "la/checks.hpp"
#include "la/reference_qr.hpp"

namespace tqr::core {
namespace {

using la::index_t;
using la::Matrix;

/// Stacks blocks vertically for batch-vs-streaming comparisons.
Matrix<double> vstack(const std::vector<Matrix<double>>& blocks) {
  index_t rows = 0;
  for (const auto& b : blocks) rows += b.rows();
  Matrix<double> out(rows, blocks[0].cols());
  index_t at = 0;
  for (const auto& b : blocks) {
    for (index_t j = 0; j < b.cols(); ++j)
      for (index_t i = 0; i < b.rows(); ++i) out(at + i, j) = b(i, j);
    at += b.rows();
  }
  return out;
}

TEST(QrUpdater, SingleBlockMatchesDirectQr) {
  const index_t m = 24, n = 8;
  auto a = Matrix<double>::random(m, n, 1);
  auto b = Matrix<double>::random(m, 1, 2);
  QrUpdater<double> upd(n, 1);
  upd.absorb(a, b);
  auto x = upd.solve();
  la::ReferenceQr<double> ref(a);
  auto x_ref = ref.solve(b);
  for (index_t i = 0; i < n; ++i) EXPECT_NEAR(x(i, 0), x_ref(i, 0), 1e-10);
}

TEST(QrUpdater, StreamingMatchesBatchSolution) {
  const index_t n = 6;
  std::vector<Matrix<double>> as, bs;
  QrUpdater<double> upd(n, 1);
  for (int blk = 0; blk < 5; ++blk) {
    const index_t rows = blk == 0 ? n : 3 + blk;  // ragged blocks
    as.push_back(Matrix<double>::random(rows, n, 10 + blk));
    bs.push_back(Matrix<double>::random(rows, 1, 20 + blk));
    upd.absorb(as.back(), bs.back());
  }
  auto x = upd.solve();
  auto a_all = vstack(as);
  auto b_all = vstack(bs);
  la::ReferenceQr<double> ref(a_all);
  auto x_ref = ref.solve(b_all);
  for (index_t i = 0; i < n; ++i) EXPECT_NEAR(x(i, 0), x_ref(i, 0), 1e-9);
  EXPECT_EQ(upd.rows_absorbed(), a_all.rows());
}

TEST(QrUpdater, RMatchesBatchRUpToSigns) {
  const index_t n = 5;
  QrUpdater<double> upd(n, 0);
  std::vector<Matrix<double>> as;
  for (int blk = 0; blk < 3; ++blk) {
    as.push_back(Matrix<double>::random(n, n, 30 + blk));
    // absorb() consumes its input; keep the original for the batch check.
    upd.absorb(as.back(), Matrix<double>(n, 0));
  }
  la::ReferenceQr<double> ref(vstack(as));
  auto r_ref = ref.r();
  const auto& r = upd.r();
  for (index_t i = 0; i < n; ++i) {
    const double sign = (r(i, i) >= 0) == (r_ref(i, i) >= 0) ? 1.0 : -1.0;
    for (index_t j = i; j < n; ++j)
      EXPECT_NEAR(r(i, j), sign * r_ref(i, j), 1e-9);
  }
}

TEST(QrUpdater, GramEqualsNormalEquationsMatrix) {
  const index_t n = 4;
  QrUpdater<double> upd(n, 0);
  std::vector<Matrix<double>> as;
  for (int blk = 0; blk < 3; ++blk) {
    as.push_back(Matrix<double>::random(n + blk, n, 40 + blk));
    upd.absorb(as.back(), Matrix<double>(n + blk, 0));
  }
  auto a_all = vstack(as);
  Matrix<double> ata(n, n);
  la::gemm<double>(la::Trans::kTrans, la::Trans::kNoTrans, 1.0, a_all.view(),
                   a_all.view(), 0.0, ata.view());
  auto g = upd.gram();
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i) EXPECT_NEAR(g(i, j), ata(i, j), 1e-9);
}

TEST(QrUpdater, SolutionConvergesAsDataAccumulates) {
  // Noisy observations of a fixed linear model: the streaming solution
  // should approach the true coefficients as blocks accumulate.
  const index_t n = 4;
  Rng rng(99);
  Matrix<double> coef(n, 1);
  for (index_t i = 0; i < n; ++i) coef(i, 0) = rng.next_double(-1, 1);
  QrUpdater<double> upd(n, 1);
  double err_early = -1;
  for (int blk = 0; blk < 50; ++blk) {
    const index_t rows = 8;
    auto a = Matrix<double>::random(rows, n, 500 + blk);
    Matrix<double> b(rows, 1);
    Rng noise(600 + blk);
    for (index_t i = 0; i < rows; ++i) {
      double yi = 0;
      for (index_t j = 0; j < n; ++j) yi += a(i, j) * coef(j, 0);
      b(i, 0) = yi + 0.01 * noise.next_gaussian();
    }
    upd.absorb(a, b);
    if (blk == 1) {
      auto x = upd.solve();
      err_early = 0;
      for (index_t i = 0; i < n; ++i)
        err_early = std::max(err_early, std::abs(x(i, 0) - coef(i, 0)));
    }
  }
  auto x = upd.solve();
  double err_late = 0;
  for (index_t i = 0; i < n; ++i)
    err_late = std::max(err_late, std::abs(x(i, 0) - coef(i, 0)));
  EXPECT_LT(err_late, err_early);
  EXPECT_LT(err_late, 0.01);
}

TEST(QrUpdater, RejectsMisshapenInputs) {
  QrUpdater<double> upd(4, 1);
  auto a = Matrix<double>::random(6, 3, 1);  // wrong column count
  auto b = Matrix<double>::random(6, 1, 2);
  EXPECT_THROW(upd.absorb(a.view(), b.view()), tqr::InvalidArgument);
  auto a2 = Matrix<double>::random(2, 4, 3);  // first block too short
  auto b2 = Matrix<double>::random(2, 1, 4);
  EXPECT_THROW(upd.absorb(a2.view(), b2.view()), tqr::InvalidArgument);
  EXPECT_THROW(upd.solve(), tqr::InvalidArgument);  // nothing absorbed
}

TEST(QrUpdater, ShortBlocksAllowedAfterSeeding) {
  const index_t n = 5;
  QrUpdater<double> upd(n, 1);
  auto a0 = Matrix<double>::random(n, n, 7);
  auto b0 = Matrix<double>::random(n, 1, 8);
  upd.absorb(a0, b0);
  // Single-row updates are the classic RLS step.
  for (int i = 0; i < 10; ++i) {
    auto a = Matrix<double>::random(1, n, 70 + i);
    auto b = Matrix<double>::random(1, 1, 80 + i);
    upd.absorb(a, b);
  }
  EXPECT_EQ(upd.rows_absorbed(), n + 10);
  auto x = upd.solve();
  EXPECT_EQ(x.rows(), n);
}

}  // namespace
}  // namespace tqr::core
