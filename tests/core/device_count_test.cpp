#include "core/device_count.hpp"

#include <gtest/gtest.h>

#include "sim/platform.hpp"

namespace tqr::core {
namespace {

DeviceCountChoice choose(std::int64_t m, int b = 16) {
  const sim::Platform p = sim::paper_platform();
  const auto profiles = profile_platform(p, b, dag::Elimination::kTt);
  return select_device_count(profiles, p.comm, /*main=*/1, m, m, b, 4);
}

TEST(DeviceCount, OrderedListMainFirstThenUpdateSpeed) {
  const auto c = choose(100);
  ASSERT_EQ(c.ordered_devices.size(), 4u);
  EXPECT_EQ(c.ordered_devices[0], 1);  // GTX580 (main)
  // Then the two GTX680s, CPU last.
  EXPECT_TRUE(c.ordered_devices[1] == 2 || c.ordered_devices[1] == 3);
  EXPECT_TRUE(c.ordered_devices[2] == 2 || c.ordered_devices[2] == 3);
  EXPECT_EQ(c.ordered_devices[3], 0);
}

TEST(DeviceCount, PredictionVectorsComplete) {
  const auto c = choose(50);
  EXPECT_EQ(c.predicted_time.size(), 4u);
  EXPECT_EQ(c.predicted_top.size(), 4u);
  EXPECT_EQ(c.predicted_tcomm.size(), 4u);
  for (double t : c.predicted_time) EXPECT_GT(t, 0);
}

TEST(DeviceCount, TcommZeroForSingleDevice) {
  const auto c = choose(50);
  EXPECT_DOUBLE_EQ(c.predicted_tcomm[0], 0.0);
  EXPECT_GT(c.predicted_tcomm[1], 0.0);
}

TEST(DeviceCount, TcommMonotoneInDeviceCount) {
  const auto c = choose(100);
  for (std::size_t p = 1; p < c.predicted_tcomm.size(); ++p)
    EXPECT_GE(c.predicted_tcomm[p], c.predicted_tcomm[p - 1]);
}

TEST(DeviceCount, TopNonIncreasingUpToThreeGpus) {
  // Adding a GPU can only offload update work in the model.
  const auto c = choose(150);
  EXPECT_GE(c.predicted_top[0], c.predicted_top[1]);
  EXPECT_GE(c.predicted_top[1], c.predicted_top[2]);
}

TEST(DeviceCount, SmallMatrixPrefersFewDevices) {
  // Table III: tiny sizes -> a single GPU wins.
  const auto c = choose(160 / 16);
  EXPECT_EQ(c.chosen_p, 1);
}

TEST(DeviceCount, LargeMatrixPrefersThreeGpus) {
  // Table III: >= ~2720 -> all three GPUs win. CPU (p=4) should not add
  // value beyond 3 GPUs.
  const auto c = choose(4000 / 16);
  EXPECT_EQ(c.chosen_p, 3);
}

TEST(DeviceCount, MidMatrixPrefersTwoGpus) {
  const auto c = choose(1280 / 16);
  EXPECT_EQ(c.chosen_p, 2);
}

TEST(DeviceCount, ChosenPMinimizesPrediction) {
  for (std::int64_t m : {10, 40, 80, 150, 250}) {
    const auto c = choose(m);
    const double chosen = c.predicted_time[c.chosen_p - 1];
    for (double t : c.predicted_time) EXPECT_LE(chosen, t + 1e-15);
  }
}

TEST(DeviceCount, CrossoverMonotone) {
  // The chosen device count never decreases as matrices grow.
  int prev = 1;
  for (std::int64_t m = 10; m <= 250; m += 10) {
    const auto c = choose(m);
    EXPECT_GE(c.chosen_p, prev) << "m=" << m;
    prev = c.chosen_p;
  }
}

TEST(DeviceCount, UnknownMainRejected) {
  const sim::Platform p = sim::paper_platform();
  const auto profiles = profile_platform(p, 16, dag::Elimination::kTt);
  EXPECT_THROW(select_device_count(profiles, p.comm, 9, 10, 10, 16, 4),
               tqr::InvalidArgument);
}

}  // namespace
}  // namespace tqr::core
