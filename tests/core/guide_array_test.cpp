#include "core/guide_array.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace tqr::core {
namespace {

TEST(IntegerRatio, PaperExampleEightTwelveFour) {
  // Paper §IV-C: devices updating 8, 12, 4 tiles per unit time -> 2:3:1.
  const auto r = integer_ratio({8.0, 12.0, 4.0});
  EXPECT_EQ(r, (std::vector<std::int64_t>{2, 3, 1}));
}

TEST(IntegerRatio, EqualThroughputsGiveOnes) {
  const auto r = integer_ratio({5.0, 5.0, 5.0});
  EXPECT_EQ(r, (std::vector<std::int64_t>{1, 1, 1}));
}

TEST(IntegerRatio, NegligibleDeviceClampedToOne) {
  // Regression: a device ~1000x slower than the fastest used to round to
  // ratio 0, silently dropping a positive-throughput participant from the
  // guide array (it then received NO update columns at all). Any device
  // that reports positive throughput must keep at least one share.
  const auto r = integer_ratio({1000.0, 1.0});
  EXPECT_GE(r[1], 1);
  EXPECT_GT(r[0], r[1]);
}

TEST(IntegerRatio, PaperExampleWithStragglerKeepsStraggler) {
  // The paper's 2:3:1 trio plus a straggler contributing 0.1 tiles/unit:
  // the fast devices keep their 2:3:1 proportion and the straggler is
  // clamped up to a single share instead of vanishing.
  const auto r = integer_ratio({8.0, 12.0, 4.0, 0.1});
  EXPECT_EQ(r[0] * 3, r[1] * 2);
  EXPECT_EQ(r[0], r[2] * 2);
  EXPECT_EQ(r[3], 1);
}

TEST(IntegerRatio, GcdReduced) {
  const auto r = integer_ratio({10.0, 20.0});  // -> 6:12 before gcd
  const std::int64_t g = std::gcd(r[0], r[1]);
  EXPECT_EQ(g, 1);
  EXPECT_EQ(r[1], 2 * r[0]);
}

TEST(IntegerRatio, RejectsNonPositive) {
  EXPECT_THROW(integer_ratio({1.0, 0.0}), tqr::InvalidArgument);
  EXPECT_THROW(integer_ratio({}), tqr::InvalidArgument);
}

TEST(GuideArray, PaperExampleTwoThreeOne) {
  // Paper §IV-C: ratio 2:3:1 -> {1, 0, 1, 0, 1, 2}.
  const auto g = generate_guide_array({2, 3, 1});
  EXPECT_EQ(g, (std::vector<int>{1, 0, 1, 0, 1, 2}));
}

TEST(GuideArray, LengthIsRatioSum) {
  EXPECT_EQ(generate_guide_array({4, 2, 3}).size(), 9u);
}

TEST(GuideArray, EachDeviceAppearsExactlyRatioTimes) {
  const std::vector<std::int64_t> ratios{3, 5, 2};
  const auto g = generate_guide_array(ratios);
  std::vector<int> counts(3, 0);
  for (int d : g) ++counts[d];
  EXPECT_EQ(counts[0], 3);
  EXPECT_EQ(counts[1], 5);
  EXPECT_EQ(counts[2], 2);
}

TEST(GuideArray, LargerRatioAppearsFirst) {
  const auto g = generate_guide_array({1, 4});
  EXPECT_EQ(g.front(), 1);
}

TEST(GuideArray, ZeroRatioDeviceNeverAppears) {
  const auto g = generate_guide_array({2, 0, 1});
  for (int d : g) EXPECT_NE(d, 1);
}

TEST(GuideArray, AllZeroRejected) {
  EXPECT_THROW(generate_guide_array({0, 0}), tqr::InvalidArgument);
}

TEST(DistributeColumns, FirstColumnPinnedToMain) {
  const auto owner = distribute_columns({1, 0, 2}, 7);
  EXPECT_EQ(owner[0], 0);
}

TEST(DistributeColumns, CyclesThroughGuide) {
  // guide {1, 0} over 5 columns: col0 -> main(0), then i%2.
  const auto owner = distribute_columns({1, 0}, 5);
  EXPECT_EQ(owner, (std::vector<int>{0, 0, 1, 0, 1}));
}

TEST(DistributeColumns, ShareConvergesToRatio) {
  const auto guide = generate_guide_array({1, 3});
  const auto owner = distribute_columns(guide, 4001);
  std::int64_t dev1 = 0;
  for (int o : owner) dev1 += (o == 1);
  EXPECT_NEAR(static_cast<double>(dev1) / 4001, 0.75, 0.01);
}

TEST(DistributeColumnsEven, RoundRobin) {
  const auto owner = distribute_columns_even(3, 7);
  EXPECT_EQ(owner, (std::vector<int>{0, 1, 2, 0, 1, 2, 0}));
}

TEST(DistributeColumnsByCores, ProportionalToCores) {
  const auto owner = distribute_columns_by_cores({512, 1536}, 4001);
  std::int64_t big = 0;
  for (int o : owner) big += (o == 1);
  EXPECT_NEAR(static_cast<double>(big) / 4001, 0.75, 0.01);
}

TEST(DistributeColumnsBlock, ContiguousBlocks) {
  const auto owner = distribute_columns_block({1, 1}, 9);
  // After the pinned first column, device 0 then device 1 in one block each.
  EXPECT_EQ(owner[0], 0);
  for (std::size_t i = 1; i < owner.size(); ++i)
    EXPECT_GE(owner[i], owner[i - 1]);
  std::int64_t d1 = 0;
  for (int o : owner) d1 += (o == 1);
  EXPECT_EQ(d1, 4);
}

TEST(DistributeColumns, SingleColumnGrid) {
  EXPECT_EQ(distribute_columns({0, 1}, 1), (std::vector<int>{0}));
  EXPECT_EQ(distribute_columns_even(2, 0), (std::vector<int>{}));
}

}  // namespace
}  // namespace tqr::core
