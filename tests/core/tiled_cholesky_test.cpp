#include "core/tiled_cholesky.hpp"

#include <gtest/gtest.h>

#include "core/simulate.hpp"
#include "la/checks.hpp"
#include "sim/platform.hpp"

namespace tqr::core {
namespace {

using la::index_t;
using la::Matrix;

Matrix<double> random_spd(index_t n, std::uint64_t seed) {
  auto b = Matrix<double>::random(n, n, seed);
  Matrix<double> a(n, n);
  la::gemm<double>(la::Trans::kNoTrans, la::Trans::kTrans, 1.0, b.view(),
                   b.view(), 0.0, a.view());
  for (index_t i = 0; i < n; ++i) a(i, i) += static_cast<double>(n);
  return a;
}

class CholeskyGrids : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(CholeskyGrids, FactorReassembles) {
  const auto [n, b] = GetParam();
  auto a = random_spd(n, 10 + n);
  auto f = TiledCholesky<double>::factor(a, b);
  auto l = f.l();
  Matrix<double> llt(n, n);
  la::gemm<double>(la::Trans::kNoTrans, la::Trans::kTrans, 1.0, l.view(),
                   l.view(), 0.0, llt.view());
  for (index_t j = 0; j < n; ++j)
    for (index_t i = j; i < n; ++i)
      EXPECT_NEAR(llt(i, j), a(i, j), 1e-8) << i << "," << j;
}

TEST_P(CholeskyGrids, MatchesBlockedPotrf) {
  const auto [n, b] = GetParam();
  auto a = random_spd(n, 20 + n);
  auto f = TiledCholesky<double>::factor(a, b);
  Matrix<double> reference = a;
  la::potrf_lower<double>(reference.view(), 8);
  auto l = f.l();
  for (index_t j = 0; j < n; ++j)
    for (index_t i = j; i < n; ++i)
      EXPECT_NEAR(l(i, j), reference(i, j), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Grids, CholeskyGrids,
                         ::testing::Values(std::pair{8, 4}, std::pair{16, 4},
                                           std::pair{32, 8},
                                           std::pair{48, 16},
                                           std::pair{40, 8}));

TEST(TiledCholesky, SolveRecoversKnownSolution) {
  const int n = 32, b = 8;
  auto a = random_spd(n, 30);
  auto x_true = Matrix<double>::random(n, 2, 31);
  Matrix<double> rhs(n, 2);
  la::gemm<double>(la::Trans::kNoTrans, la::Trans::kNoTrans, 1.0, a.view(),
                   x_true.view(), 0.0, rhs.view());
  auto f = TiledCholesky<double>::factor(a, b);
  auto x = f.solve(rhs);
  for (index_t j = 0; j < 2; ++j)
    for (index_t i = 0; i < n; ++i)
      EXPECT_NEAR(x(i, j), x_true(i, j), 1e-8);
}

TEST(TiledCholesky, GraphCountsMatchClosedForm) {
  for (int nt : {1, 2, 4, 7}) {
    auto g = dag::build_tiled_cholesky_graph(nt);
    EXPECT_TRUE(g.validate());
    const auto c = dag::cholesky_task_counts(nt);
    std::int64_t potrf = 0, trsm = 0, syrk = 0, gemm = 0;
    for (const auto& t : g.tasks()) {
      switch (t.op) {
        case dag::Op::kPotrf: ++potrf; break;
        case dag::Op::kTrsm: ++trsm; break;
        case dag::Op::kSyrk: ++syrk; break;
        case dag::Op::kGemm: ++gemm; break;
        default: FAIL() << "unexpected op in Cholesky graph";
      }
    }
    EXPECT_EQ(potrf, c.potrf);
    EXPECT_EQ(trsm, c.trsm);
    EXPECT_EQ(syrk, c.syrk);
    EXPECT_EQ(gemm, c.gemm);
  }
}

TEST(TiledCholesky, ParallelExecutionMatchesSequential) {
  const int n = 48, b = 8;
  auto a = random_spd(n, 40);
  auto f_seq = TiledCholesky<double>::factor(a, b);

  const sim::Platform platform = sim::paper_platform();
  PlanConfig pc;
  pc.tile_size = b;
  pc.main_policy = MainPolicy::kFixed;
  pc.fixed_main = 1;
  pc.count_policy = CountPolicy::kAll;
  Plan plan(platform, n / b, n / b, pc);
  typename TiledCholesky<double>::Options opts;
  opts.plan = &plan;
  opts.threads_per_device = 2;
  auto f_par = TiledCholesky<double>::factor(a, b, opts);

  for (index_t j = 0; j < n; ++j)
    for (index_t i = j; i < n; ++i)
      EXPECT_EQ(f_par.tiles().at(i, j), f_seq.tiles().at(i, j));
}

TEST(TiledCholesky, SimulatesOnThePaperPlatform) {
  const int nt = 20;
  auto g = dag::build_tiled_cholesky_graph(nt);
  const sim::Platform platform = sim::paper_platform();
  PlanConfig pc;
  pc.tile_size = 16;
  pc.main_policy = MainPolicy::kFixed;
  pc.fixed_main = 1;
  pc.count_policy = CountPolicy::kAll;
  Plan plan(platform, nt, nt, pc);
  const auto result = simulate_on_graph(g, plan, platform);
  EXPECT_GT(result.makespan_s, 0);
  EXPECT_EQ(result.tasks, static_cast<std::int64_t>(g.size()));
  // Panel work landed on the main device, updates spread across GPUs.
  EXPECT_GT(result.busy_s[1], 0);
  EXPECT_GT(result.busy_s[2] + result.busy_s[3], 0);
}

TEST(TiledCholesky, IndefiniteMatrixThrows) {
  const int n = 16, b = 8;
  Matrix<double> a = Matrix<double>::identity(n);
  a(5, 5) = -2.0;
  EXPECT_THROW(TiledCholesky<double>::factor(a, b), tqr::Error);
}

TEST(TiledCholesky, NonSquareRejected) {
  auto a = Matrix<double>::random(16, 8, 50);
  EXPECT_THROW(TiledCholesky<double>::factor(a, 8), tqr::InvalidArgument);
}

TEST(TiledCholesky, FloatPrecision) {
  const int n = 24, b = 8;
  auto ad = random_spd(n, 60);
  Matrix<float> a(n, n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i) a(i, j) = static_cast<float>(ad(i, j));
  auto f = TiledCholesky<float>::factor(a, b);
  auto l = f.l();
  Matrix<float> llt(n, n);
  la::gemm<float>(la::Trans::kNoTrans, la::Trans::kTrans, 1.0f, l.view(),
                  l.view(), 0.0f, llt.view());
  for (index_t j = 0; j < n; ++j)
    for (index_t i = j; i < n; ++i)
      EXPECT_NEAR(llt(i, j), a(i, j), 2e-3f);
}

}  // namespace
}  // namespace tqr::core
