// Functional correctness of the full tiled QR factorization: residuals
// against machine precision, equivalence with the reference Householder QR,
// TS/TT equivalence, solve paths, and schedule-independence under the
// threaded executor.
#include "core/tiled_qr.hpp"

#include <gtest/gtest.h>

#include "la/reference_qr.hpp"
#include "sim/platform.hpp"

namespace tqr::core {
namespace {

using la::index_t;
using la::Matrix;
using la::Trans;

struct Case {
  int rows, cols, b;
  dag::Elimination elim;
};

void PrintTo(const Case& c, std::ostream* os) {
  *os << c.rows << "x" << c.cols << "/b" << c.b
      << (c.elim == dag::Elimination::kTs ? "/TS" : "/TT");
}

class TiledQrCases : public ::testing::TestWithParam<Case> {};

TEST_P(TiledQrCases, FactorizationResidualsAtMachinePrecision) {
  const Case c = GetParam();
  auto a = Matrix<double>::random(c.rows, c.cols, 7000 + c.rows + c.b);
  typename TiledQrFactorization<double>::Options opts;
  opts.elim = c.elim;
  auto f = TiledQrFactorization<double>::factor(a, c.b, opts);

  auto q = f.form_q();
  EXPECT_LT(la::orthogonality_residual<double>(q.view()),
            la::residual_tolerance<double>(c.rows));

  auto r = f.r();
  EXPECT_LT(la::lower_triangle_residual<double>(r.view()), 1e-13);

  Matrix<double> r_full(c.rows, c.cols);
  for (index_t j = 0; j < c.cols; ++j)
    for (index_t i = 0; i <= j; ++i) r_full(i, j) = r(i, j);
  EXPECT_LT(la::reconstruction_residual<double>(a.view(), q.view(),
                                                r_full.view()),
            la::residual_tolerance<double>(c.rows));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TiledQrCases,
    ::testing::Values(Case{4, 4, 4, dag::Elimination::kTs},    // single tile
                      Case{8, 8, 4, dag::Elimination::kTs},
                      Case{8, 8, 4, dag::Elimination::kTt},
                      Case{16, 16, 4, dag::Elimination::kTs},
                      Case{16, 16, 4, dag::Elimination::kTt},
                      Case{32, 32, 8, dag::Elimination::kTs},
                      Case{32, 32, 8, dag::Elimination::kTt},
                      Case{48, 16, 8, dag::Elimination::kTs},  // tall
                      Case{48, 16, 8, dag::Elimination::kTt},
                      Case{64, 64, 16, dag::Elimination::kTt},
                      Case{40, 40, 8, dag::Elimination::kTt},
                      Case{56, 24, 8, dag::Elimination::kTt}));

TEST(TiledQr, MatchesReferenceR) {
  // R is unique up to row signs for a full-rank matrix.
  const int n = 24, b = 8;
  auto a = Matrix<double>::random(n, n, 99);
  auto f = TiledQrFactorization<double>::factor(a, b);
  auto r_tiled = f.r();
  la::ReferenceQr<double> ref(a);
  auto r_ref = ref.r();
  for (index_t i = 0; i < n; ++i) {
    const double sign =
        (r_tiled(i, i) >= 0) == (r_ref(i, i) >= 0) ? 1.0 : -1.0;
    for (index_t j = i; j < n; ++j)
      EXPECT_NEAR(r_tiled(i, j), sign * r_ref(i, j), 1e-9)
          << "at (" << i << "," << j << ")";
  }
}

TEST(TiledQr, TsAndTtProduceSameRUpToSigns) {
  const int n = 32, b = 8;
  auto a = Matrix<double>::random(n, n, 123);
  typename TiledQrFactorization<double>::Options ts, tt;
  ts.elim = dag::Elimination::kTs;
  tt.elim = dag::Elimination::kTt;
  auto rts = TiledQrFactorization<double>::factor(a, b, ts).r();
  auto rtt = TiledQrFactorization<double>::factor(a, b, tt).r();
  for (index_t i = 0; i < n; ++i) {
    const double sign = (rts(i, i) >= 0) == (rtt(i, i) >= 0) ? 1.0 : -1.0;
    for (index_t j = i; j < n; ++j)
      EXPECT_NEAR(rts(i, j), sign * rtt(i, j), 1e-9);
  }
}

TEST(TiledQr, HierEliminationMatchesTsUpToSigns) {
  // The hierarchical reduction tree reorders the eliminations but must
  // produce the same R (up to row signs) on a tall-skinny matrix.
  const int rows = 64, cols = 16, b = 8;
  auto a = Matrix<double>::random(rows, cols, 321);
  typename TiledQrFactorization<double>::Options ts, hier;
  ts.elim = dag::Elimination::kTs;
  hier.elim = dag::Elimination::kHier;
  hier.hier_groups = 2;
  auto rts = TiledQrFactorization<double>::factor(a, b, ts).r();
  auto rh = TiledQrFactorization<double>::factor(a, b, hier).r();
  for (index_t i = 0; i < cols; ++i) {
    const double sign = (rts(i, i) >= 0) == (rh(i, i) >= 0) ? 1.0 : -1.0;
    for (index_t j = i; j < cols; ++j)
      EXPECT_NEAR(rts(i, j), sign * rh(i, j), 1e-9);
  }
}

TEST(TiledQr, ApplyQThenQtRoundTrips) {
  const int n = 24, b = 8;
  auto a = Matrix<double>::random(n, n, 5);
  auto f = TiledQrFactorization<double>::factor(a, b);
  auto c0 = Matrix<double>::random(n, 3, 6);
  Matrix<double> c = c0;
  f.apply_q(c.view(), Trans::kTrans);
  f.apply_q(c.view(), Trans::kNoTrans);
  for (index_t j = 0; j < 3; ++j)
    for (index_t i = 0; i < n; ++i) EXPECT_NEAR(c(i, j), c0(i, j), 1e-10);
}

TEST(TiledQr, QtAEqualsR) {
  const int n = 24, b = 8;
  auto a = Matrix<double>::random(n, n, 15);
  auto f = TiledQrFactorization<double>::factor(a, b);
  Matrix<double> qta = a;
  f.apply_q(qta.view(), Trans::kTrans);
  auto r = f.r();
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i <= j; ++i) EXPECT_NEAR(qta(i, j), r(i, j), 1e-9);
    for (index_t i = j + 1; i < n; ++i) EXPECT_NEAR(qta(i, j), 0.0, 1e-9);
  }
}

TEST(TiledQr, SolveRecoversKnownSolution) {
  const int n = 32, b = 8;
  auto a = Matrix<double>::random(n, n, 20);
  for (index_t i = 0; i < n; ++i) a(i, i) += 6.0;
  auto x_true = Matrix<double>::random(n, 2, 21);
  Matrix<double> rhs(n, 2);
  la::gemm<double>(Trans::kNoTrans, Trans::kNoTrans, 1.0, a.view(),
                   x_true.view(), 0.0, rhs.view());
  auto f = TiledQrFactorization<double>::factor(a, b);
  auto x = f.solve(rhs);
  for (index_t j = 0; j < 2; ++j)
    for (index_t i = 0; i < n; ++i)
      EXPECT_NEAR(x(i, j), x_true(i, j), 1e-8);
}

TEST(TiledQr, QrSolveConvenienceMatchesReference) {
  const int n = 16, b = 4;
  auto a = Matrix<double>::random(n, n, 30);
  for (index_t i = 0; i < n; ++i) a(i, i) += 5.0;
  auto rhs = Matrix<double>::random(n, 1, 31);
  auto x_tiled = qr_solve<double>(a, rhs, b);
  la::ReferenceQr<double> ref(a);
  auto x_ref = ref.solve(rhs);
  for (index_t i = 0; i < n; ++i)
    EXPECT_NEAR(x_tiled(i, 0), x_ref(i, 0), 1e-9);
}

TEST(TiledQr, LeastSquaresOverdetermined) {
  const int m = 48, n = 16, b = 8;
  auto a = Matrix<double>::random(m, n, 40);
  auto rhs = Matrix<double>::random(m, 1, 41);
  auto f = TiledQrFactorization<double>::factor(a, b);
  auto x = f.solve(rhs);
  // Normal equations residual: A^T (b - A x) = 0.
  Matrix<double> resid = rhs;
  la::gemm<double>(Trans::kNoTrans, Trans::kNoTrans, -1.0, a.view(), x.view(),
                   1.0, resid.view());
  Matrix<double> atr(n, 1);
  la::gemm<double>(Trans::kTrans, Trans::kNoTrans, 1.0, a.view(),
                   resid.view(), 0.0, atr.view());
  for (index_t i = 0; i < n; ++i) EXPECT_NEAR(atr(i, 0), 0.0, 1e-8);
}

TEST(TiledQr, FloatPrecisionFactorization) {
  const int n = 32, b = 8;
  auto a = Matrix<float>::random(n, n, 50);
  auto f = TiledQrFactorization<float>::factor(a, b);
  auto q = f.form_q();
  EXPECT_LT(la::orthogonality_residual<float>(q.view()),
            la::residual_tolerance<float>(n));
}

TEST(TiledQr, ParallelExecutionMatchesSequentialBitwise) {
  // The DAG enforces all orderings that matter; a threaded run over the
  // plan's routing must produce the exact same factors as sequential replay.
  const int n = 48, b = 8;
  auto a = Matrix<double>::random(n, n, 60);

  auto f_seq = TiledQrFactorization<double>::factor(a, b);

  const sim::Platform platform = sim::paper_platform();
  PlanConfig pc;
  pc.tile_size = b;
  Plan plan(platform, n / b, n / b, pc);
  typename TiledQrFactorization<double>::Options opts;
  opts.plan = &plan;
  opts.threads_per_device = 2;
  auto f_par = TiledQrFactorization<double>::factor(a, b, opts);

  const auto& ts = f_seq.tiles();
  const auto& tp = f_par.tiles();
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i)
      EXPECT_EQ(ts.at(i, j), tp.at(i, j)) << "tiles differ at " << i << "," << j;
}

TEST(TiledQr, ParallelRunRecordsTrace) {
  const int n = 32, b = 8;
  auto a = Matrix<double>::random(n, n, 61);
  const sim::Platform platform = sim::paper_platform();
  PlanConfig pc;
  pc.tile_size = b;
  Plan plan(platform, n / b, n / b, pc);
  runtime::Trace trace;
  typename TiledQrFactorization<double>::Options opts;
  opts.plan = &plan;
  opts.trace = &trace;
  auto f = TiledQrFactorization<double>::factor(a, b, opts);
  EXPECT_EQ(trace.events().size(), f.graph().size());
}

TEST(TiledQr, WideMatrixRejected) {
  auto a = Matrix<double>::random(8, 16, 70);
  EXPECT_THROW(TiledQrFactorization<double>::factor(a, 4),
               tqr::InvalidArgument);
}

TEST(TiledQr, NonDivisibleSizeRejected) {
  auto a = Matrix<double>::random(10, 10, 71);
  EXPECT_THROW(TiledQrFactorization<double>::factor(a, 4),
               tqr::InvalidArgument);
}

TEST(TiledQr, PaddedFactorizationOfOddSize) {
  // pad_to_tiles lets callers factor non-multiple sizes: QR of the padded
  // matrix restricts to QR of the original in the leading block.
  const int m = 10, n = 10, b = 4;
  auto a = Matrix<double>::random(m, n, 72);
  auto padded = la::pad_to_tiles<double>(a.view(), b);
  auto f = TiledQrFactorization<double>::factor(padded, b);
  auto q = f.form_q();
  EXPECT_LT(la::orthogonality_residual<double>(q.view()), 1e-12);
  auto r = f.r();
  // Reconstruct the original block.
  Matrix<double> qr(padded.rows(), padded.cols());
  Matrix<double> r_full(padded.rows(), padded.cols());
  for (index_t j = 0; j < padded.cols(); ++j)
    for (index_t i = 0; i <= j && i < padded.rows(); ++i)
      r_full(i, j) = r(i, j);
  la::gemm<double>(Trans::kNoTrans, Trans::kNoTrans, 1.0, q.view(),
                   r_full.view(), 0.0, qr.view());
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < m; ++i) EXPECT_NEAR(qr(i, j), a(i, j), 1e-10);
}

}  // namespace
}  // namespace tqr::core
