// Tests for the extension features: measured host profiles (autotune),
// memory-capacity planning, economy Q, iterative refinement, and the
// TT-flat elimination variant.
#include <gtest/gtest.h>

#include "core/autotune.hpp"
#include "core/plan.hpp"
#include "core/simulate.hpp"
#include "core/tiled_qr.hpp"
#include "la/checks.hpp"
#include "sim/platform.hpp"

namespace tqr::core {
namespace {

using la::index_t;
using la::Matrix;

// --- measured host profiles (autotune) --------------------------------------

TEST(Autotune, MeasuredProfileIsPositiveAndComplete) {
  MeasureOptions opts;
  opts.tile_size = 16;
  opts.repetitions = 3;
  const DeviceProfile p = measure_host_profile(7, opts);
  EXPECT_EQ(p.device, 7);
  EXPECT_GT(p.kernel.t, 0);
  EXPECT_GT(p.kernel.e, 0);
  EXPECT_GT(p.kernel.ut, 0);
  EXPECT_GT(p.kernel.ue, 0);
  EXPECT_GT(p.update_throughput, 0);
}

TEST(Autotune, SlotsScaleAmortizedTimes) {
  MeasureOptions opts;
  opts.tile_size = 8;
  opts.repetitions = 3;
  opts.slots = 4;
  const DeviceProfile p = measure_host_profile(0, opts);
  EXPECT_NEAR(p.amortized.ue, p.kernel.ue / 4, p.kernel.ue * 1e-9);
}

TEST(Autotune, LargerTilesTakeLonger) {
  MeasureOptions small, big;
  small.tile_size = 8;
  big.tile_size = 32;
  small.repetitions = big.repetitions = 3;
  const DeviceProfile ps = measure_host_profile(0, small);
  const DeviceProfile pb = measure_host_profile(0, big);
  EXPECT_GT(pb.kernel.t, ps.kernel.t);
  EXPECT_GT(pb.kernel.ue, ps.kernel.ue);
}

TEST(Autotune, MeasuredProfileDrivesSelectionAlgorithms) {
  // A measured host profile must be a drop-in for the paper's algorithms:
  // combine it with modeled GPUs and run main selection + device count.
  MeasureOptions opts;
  opts.tile_size = 16;
  opts.repetitions = 2;
  opts.slots = 4;
  DeviceProfile host = measure_host_profile(0, opts);

  const sim::Platform gpus = sim::paper_platform();
  auto profiles = profile_platform(gpus, 16, dag::Elimination::kTt);
  profiles[0] = host;  // replace the modeled CPU with the measured host
  const auto sel = select_main_device(profiles, 100, 100);
  EXPECT_GE(sel.main_device, 0);
  const auto count = select_device_count(profiles, gpus.comm,
                                         sel.main_device, 100, 100, 16, 4);
  EXPECT_GE(count.chosen_p, 1);
  EXPECT_EQ(count.predicted_time.size(), profiles.size());
}

TEST(Autotune, ProfileCarriesKernelConfigurationThroughPlanning) {
  // The regression this pins: calibration and execution must agree on the
  // factor kernels' inner block size. The measured profile is stamped with
  // the ib it ran, and a PlanConfig built from it carries the same ib to
  // the executor (which reads plan.config().inner_block — see svc).
  MeasureOptions opts;
  opts.tile_size = 32;
  opts.repetitions = 1;
  opts.inner_block = 8;
  const DeviceProfile p = measure_host_profile(0, opts);
  EXPECT_EQ(p.inner_block, 8);

  PlanConfig pc;
  pc.tile_size = opts.tile_size;
  pc.inner_block = p.inner_block;
  const sim::Platform platform = sim::paper_platform();
  Plan plan(platform, 4, 4, pc);
  EXPECT_EQ(plan.config().inner_block, 8);

  // Default-constructed options keep the library-default marker (0), so a
  // consumer can tell "unspecified" apart from an explicit width.
  MeasureOptions plain;
  plain.tile_size = 16;
  plain.repetitions = 1;
  EXPECT_EQ(measure_host_profile(0, plain).inner_block, 0);
}

TEST(Autotune, InvalidOptionsRejected) {
  MeasureOptions opts;
  opts.tile_size = 0;
  EXPECT_THROW(measure_host_profile(0, opts), tqr::InvalidArgument);
  opts.tile_size = 8;
  opts.repetitions = 0;
  EXPECT_THROW(measure_host_profile(0, opts), tqr::InvalidArgument);
}

// --- memory planning ---------------------------------------------------------

TEST(MemoryPlanning, EstimatesCoverEveryParticipant) {
  const sim::Platform platform = sim::paper_platform();
  PlanConfig pc;
  pc.tile_size = 16;
  pc.count_policy = CountPolicy::kAll;
  Plan plan(platform, 100, 100, pc);
  const auto est = plan.memory_estimates(platform);
  ASSERT_EQ(est.size(), plan.participants().size());
  for (const auto& e : est) {
    EXPECT_GT(e.bytes_needed, 0u);
    EXPECT_GT(e.capacity, 0u);
  }
}

TEST(MemoryPlanning, SmallProblemFits) {
  const sim::Platform platform = sim::paper_platform();
  PlanConfig pc;
  pc.tile_size = 16;
  Plan plan(platform, 40, 40, pc);
  EXPECT_TRUE(plan.fits_in_memory(platform));
}

TEST(MemoryPlanning, HugeProblemOverflowsGpuMemory) {
  // 64000^2 single precision ~ 16 GB of tiles; a 1.5 GB GTX580 owning ~1/7
  // of the columns cannot hold them (the paper's §VIII caveat).
  const sim::Platform platform = sim::paper_platform();
  PlanConfig pc;
  pc.tile_size = 64;
  pc.count_policy = CountPolicy::kAll;
  Plan plan(platform, 1000, 1000, pc);
  EXPECT_FALSE(plan.fits_in_memory(platform));
}

TEST(MemoryPlanning, FootprintGrowsWithOwnedColumns) {
  const sim::Platform platform = sim::paper_platform();
  PlanConfig pc;
  pc.tile_size = 16;
  pc.count_policy = CountPolicy::kFixed;
  pc.fixed_count = 3;
  Plan plan(platform, 211, 211, pc);
  const auto est = plan.memory_estimates(platform);
  // Participant 1 (a GTX680, ratio 3) owns ~3x participant 0's columns.
  EXPECT_GT(est[1].bytes_needed, 2 * est[0].bytes_needed);
}

// --- economy Q and refinement ------------------------------------------------

TEST(EconomyQ, ThinQHasOrthonormalColumns) {
  const int m = 64, n = 16, b = 8;
  auto a = Matrix<double>::random(m, n, 5);
  auto f = TiledQrFactorization<double>::factor(a, b);
  auto q1 = f.form_q_thin();
  EXPECT_EQ(q1.rows(), m);
  EXPECT_EQ(q1.cols(), n);
  Matrix<double> gram(n, n);
  la::gemm<double>(la::Trans::kTrans, la::Trans::kNoTrans, 1.0, q1.view(),
                   q1.view(), 0.0, gram.view());
  for (index_t i = 0; i < n; ++i) gram(i, i) -= 1.0;
  EXPECT_LT(la::norm_frobenius<double>(gram.view()), 1e-12);
}

TEST(EconomyQ, ThinQTimesRReconstructsA) {
  const int m = 48, n = 16, b = 8;
  auto a = Matrix<double>::random(m, n, 6);
  auto f = TiledQrFactorization<double>::factor(a, b);
  auto q1 = f.form_q_thin();
  auto r = f.r();
  Matrix<double> qr(m, n);
  la::gemm<double>(la::Trans::kNoTrans, la::Trans::kNoTrans, 1.0, q1.view(),
                   r.view(), 0.0, qr.view());
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < m; ++i) EXPECT_NEAR(qr(i, j), a(i, j), 1e-10);
}

TEST(Refinement, ImprovesIllConditionedSolve) {
  const int n = 32, b = 8;
  // Graded matrix: rows scaled over 6 orders of magnitude.
  auto a = Matrix<double>::random(n, n, 7);
  for (index_t i = 0; i < n; ++i) {
    const double s = std::pow(10.0, -6.0 * i / (n - 1));
    for (index_t j = 0; j < n; ++j) a(i, j) *= s;
    a(i, i) += s;
  }
  auto x_true = Matrix<double>::random(n, 1, 8);
  Matrix<double> rhs(n, 1);
  la::gemm<double>(la::Trans::kNoTrans, la::Trans::kNoTrans, 1.0, a.view(),
                   x_true.view(), 0.0, rhs.view());
  auto f = TiledQrFactorization<double>::factor(a, b);
  auto x0 = f.solve(rhs);
  auto x2 = f.solve_refined(a, rhs, 2);
  auto err = [&](const Matrix<double>& x) {
    double e = 0;
    for (index_t i = 0; i < n; ++i)
      e = std::max(e, std::abs(x(i, 0) - x_true(i, 0)));
    return e;
  };
  EXPECT_LE(err(x2), err(x0) * 1.5 + 1e-14);  // never much worse
  EXPECT_LT(err(x2), 1e-8);                   // and genuinely accurate
}

TEST(Refinement, ShapeMismatchRejected) {
  auto a = Matrix<double>::random(16, 16, 9);
  auto f = TiledQrFactorization<double>::factor(a, 8);
  auto wrong = Matrix<double>::random(24, 16, 10);
  auto rhs = Matrix<double>::random(16, 1, 11);
  EXPECT_THROW(f.solve_refined(wrong, rhs), tqr::InvalidArgument);
}

// --- TT-flat elimination variant ----------------------------------------------

TEST(TtFlat, FactorizationIsCorrect) {
  const int n = 40, b = 8;
  auto a = Matrix<double>::random(n, n, 12);
  typename TiledQrFactorization<double>::Options opts;
  opts.elim = dag::Elimination::kTtFlat;
  auto f = TiledQrFactorization<double>::factor(a, b, opts);
  auto q = f.form_q();
  EXPECT_LT(la::orthogonality_residual<double>(q.view()),
            la::residual_tolerance<double>(n));
  auto r = f.r();
  Matrix<double> r_full(n, n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i <= j; ++i) r_full(i, j) = r(i, j);
  EXPECT_LT(la::reconstruction_residual<double>(a.view(), q.view(),
                                                r_full.view()),
            la::residual_tolerance<double>(n));
}

TEST(TtFlat, SameKernelCountsAsTree) {
  const auto tree = dag::total_step_counts(12, 12, dag::Elimination::kTt);
  const auto flat = dag::total_step_counts(12, 12, dag::Elimination::kTtFlat);
  EXPECT_EQ(tree.triangulation, flat.triangulation);
  EXPECT_EQ(tree.elimination, flat.elimination);
  EXPECT_EQ(tree.update_elimination, flat.update_elimination);
  const auto gt = dag::build_tiled_qr_graph(12, 12, dag::Elimination::kTt);
  const auto gf = dag::build_tiled_qr_graph(12, 12, dag::Elimination::kTtFlat);
  EXPECT_EQ(gt.size(), gf.size());
}

TEST(TtFlat, TreeHasShorterCriticalPathThanFlat) {
  const auto unit = [](const dag::Task&) { return 1.0; };
  const auto gt = dag::build_tiled_qr_graph(32, 2, dag::Elimination::kTt);
  const auto gf = dag::build_tiled_qr_graph(32, 2, dag::Elimination::kTtFlat);
  EXPECT_LT(gt.critical_path(unit), gf.critical_path(unit));
}

TEST(TtFlat, SimulatesEndToEnd) {
  PlanConfig pc;
  pc.tile_size = 16;
  pc.elim = dag::Elimination::kTtFlat;
  pc.count_policy = CountPolicy::kAll;
  const auto run = simulate_tiled_qr(sim::paper_platform(), 640, 640, pc);
  EXPECT_GT(run.result.makespan_s, 0);
}

TEST(TtFlat, EliminationNameTable) {
  EXPECT_STREQ(dag::elimination_name(dag::Elimination::kTs), "TS");
  EXPECT_STREQ(dag::elimination_name(dag::Elimination::kTt), "TT");
  EXPECT_STREQ(dag::elimination_name(dag::Elimination::kTtFlat), "TT-flat");
  EXPECT_FALSE(dag::uses_tt_kernels(dag::Elimination::kTs));
  EXPECT_TRUE(dag::uses_tt_kernels(dag::Elimination::kTtFlat));
}

}  // namespace
}  // namespace tqr::core
