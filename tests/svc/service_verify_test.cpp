// Silent-corruption defense through svc::QrService end to end: corrupt-mode
// fault injection vs the verification tiers, retry self-healing, terminal
// kCorrupted contract, and the lane quarantine / probation circuit breaker.
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "la/checks.hpp"
#include "la/matrix.hpp"
#include "svc/qr_service.hpp"

namespace tqr::svc {
namespace {

JobSpec spec_for(la::index_t rows, la::index_t cols, std::uint64_t seed) {
  JobSpec spec;
  spec.a = la::Matrix<double>::random(rows, cols, seed);
  return spec;
}

ServiceConfig corrupting(FaultConfig::Corrupt kind, int lanes = 1) {
  ServiceConfig config;
  config.lanes = lanes;
  config.fault.mode = FaultConfig::Mode::kCorrupt;
  config.fault.corrupt = kind;
  config.fault.task = 0;  // poison the first GEQRT's output, every job
  return config;
}

TEST(VerifyParsing, TiersAndCorruptKinds) {
  EXPECT_EQ(parse_verify("none"), Verify::kNone);
  EXPECT_EQ(parse_verify("scan"), Verify::kScan);
  EXPECT_EQ(parse_verify("probe"), Verify::kProbe);
  EXPECT_EQ(parse_verify("full"), Verify::kFull);
  EXPECT_THROW(parse_verify("paranoid"), InvalidArgument);
  EXPECT_EQ(parse_fault_mode("corrupt"), FaultConfig::Mode::kCorrupt);
  EXPECT_EQ(parse_corrupt_kind("any"), FaultConfig::Corrupt::kAny);
  EXPECT_EQ(parse_corrupt_kind("nan"), FaultConfig::Corrupt::kNaN);
  EXPECT_EQ(parse_corrupt_kind("bitflip"), FaultConfig::Corrupt::kBitFlip);
  EXPECT_EQ(parse_corrupt_kind("perturb"), FaultConfig::Corrupt::kPerturb);
  EXPECT_THROW(parse_corrupt_kind("gamma-ray"), InvalidArgument);
}

TEST(ServiceVerify, UnverifiedCorruptionPassesSilently) {
  // The failure mode the tiers exist to close: with verify=kNone a poisoned
  // factorization completes kOk — the caller gets wrong factors and no
  // signal (pinned by the report-only residual as ground truth).
  QrService service(corrupting(FaultConfig::Corrupt::kPerturb));
  JobSpec spec = spec_for(64, 64, 1);
  spec.compute_residual = true;
  const auto r = service.submit(std::move(spec)).get();
  ASSERT_EQ(r.status, JobStatus::kOk) << r.error;
  EXPECT_FALSE(r.residual <= la::verify_tolerance<double>(64 + 16));
  EXPECT_GE(service.stats().faults_injected, 1u);
}

TEST(ServiceVerify, ScanCatchesNaNPoison) {
  QrService service(corrupting(FaultConfig::Corrupt::kNaN));
  JobSpec spec = spec_for(64, 64, 2);
  spec.verify = Verify::kScan;
  const auto r = service.submit(std::move(spec)).get();
  EXPECT_EQ(r.status, JobStatus::kCorrupted);
  EXPECT_EQ(r.attempts, 1);
  EXPECT_NE(r.error.find("verification"), std::string::npos) << r.error;
}

TEST(ServiceVerify, CleanProbeRunsNeverFalsePositive) {
  // Zero-false-positive half of the acceptance contract: no injector, tier
  // kProbe, many seeds — every job must verify clean.
  ServiceConfig config;
  config.lanes = 2;
  QrService service(config);
  std::vector<std::future<JobResult>> futures;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    JobSpec spec = spec_for(48 + 16 * (seed % 3), 48, 100 + seed);
    spec.verify = Verify::kProbe;
    futures.push_back(service.submit(std::move(spec)));
  }
  for (auto& f : futures) {
    const auto r = f.get();
    ASSERT_EQ(r.status, JobStatus::kOk) << r.error;
    EXPECT_GE(r.verify_residual, 0.0);
  }
  const auto s = service.stats();
  EXPECT_EQ(s.verify_failures, 0u);
  EXPECT_EQ(s.jobs_corrupted, 0u);
}

TEST(ServiceVerify, ProbeDetectsEveryCorruptKindAcrossSeeds) {
  // Detection half: >= 99% (here: all) of corrupted jobs must terminate
  // kCorrupted when verified at kProbe, for each corruption kind.
  const FaultConfig::Corrupt kinds[] = {FaultConfig::Corrupt::kNaN,
                                        FaultConfig::Corrupt::kBitFlip,
                                        FaultConfig::Corrupt::kPerturb};
  for (const auto kind : kinds) {
    QrService service(corrupting(kind));
    std::vector<std::future<JobResult>> futures;
    for (std::uint64_t seed = 1; seed <= 14; ++seed) {
      JobSpec spec = spec_for(
          64, 64, 1000 * (1 + static_cast<std::uint64_t>(kind)) + seed);
      spec.verify = Verify::kProbe;
      futures.push_back(service.submit(std::move(spec)));
    }
    for (auto& f : futures) {
      const auto r = f.get();
      EXPECT_EQ(r.status, JobStatus::kCorrupted)
          << "kind=" << static_cast<int>(kind) << " slipped past the probe";
      EXPECT_EQ(r.r.rows(), 0);       // never ship corrupted factors
      EXPECT_FALSE(r.error.empty());  // and always say why
    }
    const auto s = service.stats();
    EXPECT_EQ(s.jobs_corrupted, 14u);
    EXPECT_GE(s.verify_failures, 14u);
  }
}

TEST(ServiceVerify, RetryHealsTransientCorruption) {
  // Self-healing: one injected corruption, two attempts — the first fails
  // verification, the retry factors clean, and the failed attempt's
  // workspace went back to the pool scrubbed.
  ServiceConfig config = corrupting(FaultConfig::Corrupt::kBitFlip);
  config.fault.max_injections = 1;
  QrService service(config);
  JobSpec spec = spec_for(64, 64, 5);
  spec.verify = Verify::kProbe;
  spec.max_attempts = 2;
  spec.compute_residual = true;
  const auto r = service.submit(std::move(spec)).get();
  ASSERT_EQ(r.status, JobStatus::kOk) << r.error;
  EXPECT_EQ(r.attempts, 2);
  EXPECT_LE(r.residual, la::verify_tolerance<double>(64 + 16));
  const auto s = service.stats();
  EXPECT_EQ(s.jobs_completed, 1u);
  EXPECT_EQ(s.jobs_retried, 1u);
  EXPECT_EQ(s.verify_failures, 1u);
  EXPECT_EQ(s.jobs_corrupted, 0u);  // healed, not terminal
  EXPECT_GE(s.workspace.scrubbed, 1u);
}

TEST(ServiceVerify, FullTierEnforcesReconstructionResidual) {
  QrService service(corrupting(FaultConfig::Corrupt::kPerturb));
  JobSpec spec = spec_for(64, 64, 6);
  spec.verify = Verify::kFull;
  const auto r = service.submit(std::move(spec)).get();
  EXPECT_EQ(r.status, JobStatus::kCorrupted);
  EXPECT_EQ(r.r.rows(), 0);
}

TEST(ServiceQuarantine, BadLaneIsolatedWhileSurvivorsFinishTheWork) {
  // The acceptance scenario: lane 0 corrupts every job it touches; with
  // quarantine_after=1 its first bad job takes it out of rotation and the
  // shared queue routes everything else to lane 1.
  ServiceConfig config;
  config.lanes = 2;
  config.quarantine_after = 1;  // probation_s = 0: permanent quarantine
  config.fault.mode = FaultConfig::Mode::kCorrupt;
  config.fault.corrupt = FaultConfig::Corrupt::kAny;
  config.fault.lane = 0;  // the one bad device
  QrService service(config);

  std::vector<std::future<JobResult>> futures;
  for (int i = 0; i < 12; ++i) {
    JobSpec spec = spec_for(64, 64, 200 + i);
    spec.verify = Verify::kProbe;
    futures.push_back(service.submit(std::move(spec)));
  }
  int ok = 0, corrupted = 0;
  for (auto& f : futures) {
    const auto r = f.get();
    if (r.status == JobStatus::kOk) {
      EXPECT_EQ(r.lane, 1);  // survivors only run on the healthy lane
      ++ok;
    } else {
      EXPECT_EQ(r.status, JobStatus::kCorrupted) << r.error;
      EXPECT_EQ(r.lane, 0);
      ++corrupted;
    }
  }
  // Lane 0 completes exactly the jobs it popped before its breaker opened
  // (at least its first; scheduling may hand it one per re-check window).
  EXPECT_GE(corrupted, 1);
  EXPECT_EQ(ok + corrupted, 12);
  const auto s = service.stats();
  EXPECT_EQ(s.lanes_quarantined, 1);
  EXPECT_GE(s.lane_quarantines, 1u);
  EXPECT_EQ(s.jobs_completed, static_cast<std::uint64_t>(ok));
}

TEST(ServiceQuarantine, ProbationReadmitsHealedLane) {
  ServiceConfig config;
  config.lanes = 2;
  config.quarantine_after = 1;
  config.probation_s = 0.05;
  config.fault.mode = FaultConfig::Mode::kCorrupt;
  config.fault.corrupt = FaultConfig::Corrupt::kNaN;
  config.fault.lane = 0;
  config.fault.max_injections = 1;  // lane 0 corrupts once, then is healthy
  QrService service(config);

  JobSpec first = spec_for(64, 64, 300);
  first.verify = Verify::kScan;
  const auto bad = service.submit(std::move(first)).get();
  // Lane 1 may win the race for the first job; keep feeding until lane 0's
  // single injection lands and quarantines it.
  auto quarantined = [&] { return service.stats().lanes_quarantined == 1; };
  std::uint64_t seed = 301;
  JobResult probe_bad = bad;
  while (!quarantined() && probe_bad.status == JobStatus::kOk) {
    JobSpec spec = spec_for(64, 64, seed++);
    spec.verify = Verify::kScan;
    probe_bad = service.submit(std::move(spec)).get();
  }
  EXPECT_EQ(probe_bad.status, JobStatus::kCorrupted);
  EXPECT_EQ(service.stats().lanes_quarantined, 1);

  // After probation_s the lane half-opens; its probation job succeeds (the
  // injector is exhausted) and it rejoins the rotation for good.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  std::vector<std::future<JobResult>> futures;
  for (int i = 0; i < 8; ++i) {
    JobSpec spec = spec_for(64, 64, 400 + i);
    spec.verify = Verify::kScan;
    futures.push_back(service.submit(std::move(spec)));
  }
  for (auto& f : futures) EXPECT_EQ(f.get().status, JobStatus::kOk);
  const auto s = service.stats();
  EXPECT_GE(s.lane_probations, 1u);
  EXPECT_EQ(s.lanes_quarantined, 0);
}

TEST(ServiceConfigValidation, RejectsNegativeBreakerKnobs) {
  ServiceConfig config;
  config.quarantine_after = -1;
  EXPECT_THROW(QrService{config}, InvalidArgument);
  config.quarantine_after = 0;
  config.probation_s = -0.5;
  EXPECT_THROW(QrService{config}, InvalidArgument);
}

}  // namespace
}  // namespace tqr::svc
