// Batched job kind end to end: one JobSpec carrying N small matrices through
// the chunk-interleaved engine, with verification, cancellation, and
// corruption quarantine acting per member while queueing, planning, and
// workspace act per batch.
#include <gtest/gtest.h>

#include <future>
#include <thread>
#include <vector>

#include "la/checks.hpp"
#include "la/kernels.hpp"
#include "obs/json.hpp"
#include "svc/qr_service.hpp"

namespace tqr::svc {
namespace {

std::vector<la::Matrix<double>> random_batch(la::index_t m, la::index_t n,
                                             int count, std::uint64_t seed) {
  std::vector<la::Matrix<double>> out;
  for (int p = 0; p < count; ++p)
    out.push_back(
        la::Matrix<double>::random(m, n, seed + static_cast<std::uint64_t>(p)));
  return out;
}

/// Scalar ground truth: the R factor geqrt_unblocked produces for `a`. The
/// batched engine uses the same sign conventions, so members agree within
/// rounding (not bitwise — the batched column norms use sqrt, not hypot).
la::Matrix<double> reference_r(const la::Matrix<double>& a) {
  la::Matrix<double> vr = a;
  la::Matrix<double> t(a.cols(), a.cols());
  la::geqrt_unblocked<double>(vr.view(), t.view());
  la::Matrix<double> r(a.cols(), a.cols());
  for (la::index_t j = 0; j < a.cols(); ++j)
    for (la::index_t i = 0; i <= j; ++i) r(i, j) = vr(i, j);
  return r;
}

void expect_member_parity(const JobResult& result,
                          const std::vector<la::Matrix<double>>& problems,
                          double tol) {
  int ok = 0;
  ASSERT_EQ(result.problem_status.size(), problems.size());
  ASSERT_EQ(result.batch_r.size(), problems.size());
  for (std::size_t p = 0; p < problems.size(); ++p) {
    if (result.problem_status[p] != JobStatus::kOk) {
      EXPECT_EQ(result.batch_r[p].rows(), 0) << "member " << p;
      continue;
    }
    ++ok;
    const auto ref = reference_r(problems[p]);
    ASSERT_EQ(result.batch_r[p].rows(), ref.rows()) << "member " << p;
    EXPECT_LT(la::relative_error<double>(result.batch_r[p].view(), ref.view()),
              tol)
        << "member " << p;
  }
  EXPECT_EQ(result.problems_ok, ok);
}

TEST(ServiceBatch, FactorsEveryMemberAndMatchesScalarR) {
  QrService service{ServiceConfig{}};
  const auto problems = random_batch(16, 16, 13, 100);
  JobSpec spec;
  spec.batch = problems;
  spec.verify = Verify::kFull;
  const auto result = service.submit(std::move(spec)).get();
  ASSERT_EQ(result.status, JobStatus::kOk) << result.error;
  EXPECT_EQ(result.problems, 13);
  EXPECT_EQ(result.problems_ok, 13);
  EXPECT_EQ(result.rows, 16);
  EXPECT_EQ(result.cols, 16);
  EXPECT_GT(result.batch_occupancy, 0.0);
  EXPECT_LE(result.batch_occupancy, 1.0);
  EXPECT_LT(result.verify_residual, la::verify_tolerance<double>(32));
  expect_member_parity(result, problems, la::verify_tolerance<double>(32));
  // A batched job is ONE unit of queue work.
  const auto stats = service.stats();
  EXPECT_EQ(stats.jobs_submitted, 1u);
  EXPECT_EQ(stats.jobs_completed, 1u);
  EXPECT_EQ(stats.batched_jobs, 1u);
  EXPECT_EQ(stats.batched_problems, 13u);
  EXPECT_GT(stats.batch_occupancy, 0.0);
}

TEST(ServiceBatch, SecondSameShapeBatchHitsThePlanCache) {
  QrService service{ServiceConfig{}};
  for (int round = 0; round < 2; ++round) {
    JobSpec spec;
    spec.batch = random_batch(8, 8, 5, 200 + 10 * round);
    const auto r = service.submit(std::move(spec)).get();
    ASSERT_EQ(r.status, JobStatus::kOk) << r.error;
    EXPECT_EQ(r.plan_cache_hit, round > 0);
  }
  // One pooled lease per batch, recycled across the two jobs.
  const auto ws = service.stats().workspace;
  EXPECT_EQ(ws.allocated, 1u);
  EXPECT_EQ(ws.reused, 1u);
}

TEST(ServiceBatch, Fp32BatchStaysWithinFloatTolerance) {
  QrService service{ServiceConfig{}};
  const auto problems = random_batch(12, 12, 9, 300);
  JobSpec spec;
  spec.batch = problems;
  spec.precision = Precision::kFp32;
  spec.verify = Verify::kScan;
  const auto result = service.submit(std::move(spec)).get();
  ASSERT_EQ(result.status, JobStatus::kOk) << result.error;
  EXPECT_EQ(result.precision, Precision::kFp32);
  EXPECT_EQ(result.problems_ok, 9);
  expect_member_parity(result, problems, la::verify_tolerance<float>(24));
}

TEST(ServiceBatch, BatchPlusSingleMatrixSpecIsRejected) {
  QrService service{ServiceConfig{}};
  JobSpec spec;
  spec.a = la::Matrix<double>::random(8, 8, 1);
  spec.batch = random_batch(8, 8, 2, 2);
  const auto result = service.submit(std::move(spec)).get();
  EXPECT_EQ(result.status, JobStatus::kFailed);
  EXPECT_FALSE(result.error.empty());
  // Wide members are rejected the same way.
  JobSpec wide;
  wide.batch.push_back(la::Matrix<double>::random(4, 6, 3));
  EXPECT_EQ(service.submit(std::move(wide)).get().status, JobStatus::kFailed);
}

TEST(ServiceBatch, ImmediateDeadlineCancelsUnranMembersCleanly) {
  // An exec deadline that lapses before the first chunk: the batch completes
  // kCancelled with every member kCancelled and no partial R handed out.
  QrService service{ServiceConfig{}};
  JobSpec spec;
  spec.batch = random_batch(16, 16, 10, 400);
  spec.exec_deadline_s = 1e-12;
  const auto result = service.submit(std::move(spec)).get();
  EXPECT_EQ(result.status, JobStatus::kCancelled);
  EXPECT_EQ(result.problems_ok, 0);
  ASSERT_EQ(result.problem_status.size(), 10u);
  for (const auto s : result.problem_status)
    EXPECT_EQ(s, JobStatus::kCancelled);
  for (const auto& r : result.batch_r) EXPECT_EQ(r.rows(), 0);
}

TEST(ServiceBatch, MidBatchDeadlineKeepsCompletedMembersValid) {
  // Time an uncancelled run of the same batch, then resubmit with a deadline
  // around half of it. Wherever the deadline lands, the invariant holds:
  // members reported kOk carry a valid R, members reported kCancelled carry
  // nothing, and problems_ok counts exactly the former.
  QrService service{ServiceConfig{}};
  const int count = 512;
  const auto problems = random_batch(32, 32, count, 500);
  JobSpec warm;
  warm.batch = problems;
  const auto timed = service.submit(std::move(warm)).get();
  ASSERT_EQ(timed.status, JobStatus::kOk) << timed.error;

  JobSpec spec;
  spec.batch = problems;
  spec.exec_deadline_s = timed.exec_s / 2;
  const auto result = service.submit(std::move(spec)).get();
  ASSERT_TRUE(result.status == JobStatus::kCancelled ||
              result.status == JobStatus::kOk)
      << to_string(result.status);
  if (result.status == JobStatus::kCancelled) {
    EXPECT_LT(result.problems_ok, count);
    EXPECT_FALSE(result.error.empty());
  }
  expect_member_parity(result, problems, la::verify_tolerance<double>(64));
  // Cancellation acts at chunk granularity: completed members form a prefix
  // (chunks run in order), so the first kCancelled member ends the kOk run.
  bool seen_cancelled = false;
  for (const auto s : result.problem_status) {
    if (s != JobStatus::kOk) seen_cancelled = true;
    else EXPECT_FALSE(seen_cancelled) << "kOk member after a cancelled one";
  }
}

TEST(ServiceBatch, CorruptedMemberQuarantinesAloneUnderScan) {
  // Poison exactly member 3's factors with a NaN: that member must come back
  // kCorrupted, every other member stays kOk with a valid R, and the job's
  // terminal status reports the partial corruption.
  ServiceConfig config;
  config.fault.mode = FaultConfig::Mode::kCorrupt;
  config.fault.corrupt = FaultConfig::Corrupt::kNaN;
  config.fault.task = 3;  // batched jobs key corruption triggers by member
  config.fault.max_injections = 1;
  QrService service{config};
  const auto problems = random_batch(12, 12, 8, 600);
  JobSpec spec;
  spec.batch = problems;
  spec.verify = Verify::kScan;
  const auto result = service.submit(std::move(spec)).get();
  EXPECT_EQ(result.status, JobStatus::kCorrupted);
  EXPECT_FALSE(result.error.empty());
  EXPECT_EQ(result.problems_ok, 7);
  ASSERT_EQ(result.problem_status.size(), 8u);
  for (std::size_t p = 0; p < 8; ++p)
    EXPECT_EQ(result.problem_status[p],
              p == 3 ? JobStatus::kCorrupted : JobStatus::kOk)
        << "member " << p;
  expect_member_parity(result, problems, la::verify_tolerance<double>(24));
  EXPECT_EQ(service.stats().verify_failures, 1u);
}

TEST(ServiceBatch, ProbeCatchesAPerturbedMember) {
  // An epsilon-scale perturbation sails through the NaN scan; the probe
  // residual catches it. Same quarantine contract as the scan test.
  ServiceConfig config;
  config.fault.mode = FaultConfig::Mode::kCorrupt;
  config.fault.corrupt = FaultConfig::Corrupt::kPerturb;
  config.fault.corrupt_scale = 1e-3;
  config.fault.task = 5;
  config.fault.max_injections = 1;
  QrService service{config};
  JobSpec spec;
  spec.batch = random_batch(16, 16, 6, 700);
  spec.verify = Verify::kProbe;
  const auto result = service.submit(std::move(spec)).get();
  EXPECT_EQ(result.status, JobStatus::kCorrupted);
  EXPECT_EQ(result.problems_ok, 5);
  ASSERT_EQ(result.problem_status.size(), 6u);
  EXPECT_EQ(result.problem_status[5], JobStatus::kCorrupted);
}

TEST(ServiceBatch, MetricsExposeBatchedCountersAndParseBack) {
  QrService service{ServiceConfig{}};
  for (int i = 0; i < 2; ++i) {
    JobSpec spec;
    spec.batch = random_batch(8, 8, 5, 800 + 10 * i);
    ASSERT_EQ(service.submit(std::move(spec)).get().status, JobStatus::kOk);
  }
  // One single-matrix job must NOT move the batched counters.
  JobSpec single;
  single.a = la::Matrix<double>::random(32, 32, 900);
  ASSERT_EQ(service.submit(std::move(single)).get().status, JobStatus::kOk);

  const obs::Registry::Snapshot m = service.metrics();
  EXPECT_EQ(m.counters.at("svc.batched_jobs"), 2u);
  EXPECT_EQ(m.counters.at("svc.batched_problems"), 10u);
  EXPECT_GT(m.gauges.at("exec.batch_occupancy"), 0.0);

  const obs::Json doc = obs::Json::parse(service.metrics_json());
  EXPECT_DOUBLE_EQ(
      doc.find("counters")->find("svc.batched_jobs")->as_number(), 2.0);
  EXPECT_DOUBLE_EQ(
      doc.find("counters")->find("svc.batched_problems")->as_number(), 10.0);
  EXPECT_GT(doc.find("gauges")->find("exec.batch_occupancy")->as_number(),
            0.0);
}

TEST(ServiceBatch, ConcurrentBatchesAndSinglesStress) {
  // The TSan-leg workload: several threads race batched and single-matrix
  // submissions against one service; every job must come back clean and the
  // batched counters must add up exactly.
  ServiceConfig config;
  config.lanes = 3;
  QrService service{config};
  constexpr int kThreads = 4;
  constexpr int kJobsPerThread = 6;
  constexpr int kMembers = 7;
  std::vector<std::thread> threads;
  std::vector<int> ok_batched(kThreads, 0), ok_single(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::vector<std::future<JobResult>> futures;
      for (int j = 0; j < kJobsPerThread; ++j) {
        JobSpec spec;
        if (j % 2 == 0) {
          spec.batch = random_batch(
              8, 8, kMembers,
              1000 + static_cast<std::uint64_t>(t) * 100 +
                  static_cast<std::uint64_t>(j));
          spec.verify = Verify::kScan;
        } else {
          spec.a = la::Matrix<double>::random(
              24, 24, 2000 + static_cast<std::uint64_t>(t) * 100 +
                          static_cast<std::uint64_t>(j));
        }
        futures.push_back(service.submit(std::move(spec)));
      }
      for (std::size_t j = 0; j < futures.size(); ++j) {
        const auto r = futures[j].get();
        ASSERT_EQ(r.status, JobStatus::kOk) << r.error;
        if (j % 2 == 0) {
          ASSERT_EQ(r.problems_ok, kMembers);
          ++ok_batched[static_cast<std::size_t>(t)];
        } else {
          ++ok_single[static_cast<std::size_t>(t)];
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  int batched = 0, single = 0;
  for (int t = 0; t < kThreads; ++t) {
    batched += ok_batched[static_cast<std::size_t>(t)];
    single += ok_single[static_cast<std::size_t>(t)];
  }
  EXPECT_EQ(batched, kThreads * 3);
  EXPECT_EQ(single, kThreads * 3);
  const auto stats = service.stats();
  EXPECT_EQ(stats.batched_jobs, static_cast<std::uint64_t>(batched));
  EXPECT_EQ(stats.batched_problems,
            static_cast<std::uint64_t>(batched * kMembers));
  EXPECT_EQ(stats.jobs_completed,
            static_cast<std::uint64_t>(kThreads * kJobsPerThread));
}

}  // namespace
}  // namespace tqr::svc
