#include "svc/workspace_pool.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace tqr::svc {
namespace {

constexpr std::size_t kMB = std::size_t{1} << 20;

TEST(WorkspacePool, AcquireAllocatesCorrectShapes) {
  WorkspacePool pool(64 * kMB);
  auto ws = pool.acquire(64, 32, 16);
  EXPECT_EQ(ws->a.rows(), 64);
  EXPECT_EQ(ws->a.cols(), 32);
  EXPECT_EQ(ws->tg.tile_size(), 16);
  EXPECT_EQ(ws->te.rows(), 64);
  EXPECT_EQ(pool.stats().allocated, 1u);
  EXPECT_EQ(pool.stats().outstanding, 1u);
}

TEST(WorkspacePool, ReleaseThenAcquireRecycles) {
  WorkspacePool pool(64 * kMB);
  double* data = nullptr;
  {
    auto ws = pool.acquire(64, 64, 16);
    data = ws->a.tile_data(0, 0);
  }
  EXPECT_GT(pool.stats().bytes_retained, 0u);
  auto ws = pool.acquire(64, 64, 16);
  EXPECT_EQ(ws->a.tile_data(0, 0), data);  // same storage came back
  EXPECT_EQ(pool.stats().reused, 1u);
  EXPECT_EQ(pool.stats().allocated, 1u);
}

TEST(WorkspacePool, MismatchedShapeAllocatesFresh) {
  WorkspacePool pool(64 * kMB);
  { auto ws = pool.acquire(64, 64, 16); }
  auto ws = pool.acquire(128, 64, 16);
  EXPECT_EQ(pool.stats().reused, 0u);
  EXPECT_EQ(pool.stats().allocated, 2u);
}

TEST(WorkspacePool, ByteCapDropsOverflow) {
  // One 64x64 double workspace = 3 * 64*64*8 = 96 KiB. Cap at ~one.
  // Both leases must be live at once so two allocations exist; releasing
  // the second pushes retained bytes over the cap.
  WorkspacePool pool(100 * 1024);
  {
    auto a = pool.acquire(64, 64, 16);
    auto b = pool.acquire(64, 64, 16);
  }
  const auto s = pool.stats();
  EXPECT_EQ(s.allocated, 2u);
  EXPECT_EQ(s.dropped, 1u);
  EXPECT_LE(s.bytes_retained, 100u * 1024u);
}

TEST(WorkspacePool, ZeroCapDisablesRecycling) {
  WorkspacePool pool(0);
  { auto ws = pool.acquire(64, 64, 16); }
  EXPECT_EQ(pool.stats().bytes_retained, 0u);
  EXPECT_EQ(pool.stats().dropped, 1u);
  auto ws = pool.acquire(64, 64, 16);
  EXPECT_EQ(pool.stats().reused, 0u);
  EXPECT_EQ(pool.stats().allocated, 2u);
}

TEST(WorkspacePool, TrimFreesParkedMemory) {
  WorkspacePool pool(64 * kMB);
  { auto ws = pool.acquire(64, 64, 16); }
  EXPECT_GT(pool.stats().bytes_retained, 0u);
  pool.trim();
  EXPECT_EQ(pool.stats().bytes_retained, 0u);
  // Next acquire is a fresh allocation.
  auto ws = pool.acquire(64, 64, 16);
  EXPECT_EQ(pool.stats().reused, 0u);
}

TEST(WorkspacePool, LeaseMoveTransfersOwnership) {
  WorkspacePool pool(64 * kMB);
  auto a = pool.acquire(64, 64, 16);
  WorkspacePool::Lease b = std::move(a);
  EXPECT_FALSE(a);
  EXPECT_TRUE(b);
  EXPECT_EQ(pool.stats().outstanding, 1u);
}

TEST(WorkspacePool, InvalidShapeRejected) {
  WorkspacePool pool(64 * kMB);
  EXPECT_THROW(pool.acquire(60, 64, 16), tqr::InvalidArgument);
  EXPECT_THROW(pool.acquire(0, 64, 16), tqr::InvalidArgument);
}

TEST(WorkspacePool, OversizedWorkspaceDroppedNotParked) {
  // Cap (200 KiB) holds a 64x64 workspace (96 KiB) but not a 128x128 one
  // (384 KiB): the small one stays parked, the big one is dropped outright.
  WorkspacePool pool(200 * 1024);
  { auto a = pool.acquire(64, 64, 16); }
  { auto b = pool.acquire(128, 128, 16); }
  const auto s = pool.stats();
  EXPECT_EQ(s.dropped, 1u);
  EXPECT_EQ(s.bytes_retained, 3u * 64u * 64u * sizeof(double));
  // The parked 64x64 is still recyclable.
  auto c = pool.acquire(64, 64, 16);
  EXPECT_EQ(pool.stats().reused, 1u);
}

TEST(WorkspacePool, ScrubOnReleaseZeroFillsRecycledStorage) {
  // A failed/cancelled/corrupted job's lease is marked for scrubbing: the
  // recycled workspace must come back all-zero in every plane, exactly like
  // a fresh allocation, so poisoned factors cannot leak into the next job.
  WorkspacePool pool(64 * kMB);
  double* data = nullptr;
  {
    auto ws = pool.acquire(64, 64, 16);
    data = ws->a.tile_data(0, 0);
    ws->a.tile(0, 0)(3, 3) = 1e30;  // "poisoned" content
    ws->tg.tile(0, 0)(0, 0) = 7.0;
    ws->te.tile(1, 0)(5, 5) = -2.5;
    ws.scrub_on_release(true);
  }
  EXPECT_EQ(pool.stats().scrubbed, 1u);
  auto ws = pool.acquire(64, 64, 16);
  ASSERT_EQ(ws->a.tile_data(0, 0), data);  // same storage, recycled
  EXPECT_EQ(pool.stats().reused, 1u);
  EXPECT_EQ(ws->a.tile(0, 0)(3, 3), 0.0);
  EXPECT_EQ(ws->tg.tile(0, 0)(0, 0), 0.0);
  EXPECT_EQ(ws->te.tile(1, 0)(5, 5), 0.0);
}

TEST(WorkspacePool, CleanReleaseSkipsScrub) {
  WorkspacePool pool(64 * kMB);
  {
    auto ws = pool.acquire(64, 64, 16);
    ws->a.tile(0, 0)(1, 1) = 4.0;
  }  // default: no scrub (clean jobs fully overwrite their input anyway)
  EXPECT_EQ(pool.stats().scrubbed, 0u);
  auto ws = pool.acquire(64, 64, 16);
  EXPECT_EQ(ws->a.tile(0, 0)(1, 1), 4.0);  // stale content is tolerated
}

TEST(WorkspacePool, ScrubDisarmedByCleanFinishAndMovedWithLease) {
  WorkspacePool pool(64 * kMB);
  {
    auto ws = pool.acquire(64, 64, 16);
    ws->a.tile(0, 0)(0, 0) = 9.0;
    ws.scrub_on_release(true);
    WorkspacePool::Lease moved = std::move(ws);  // scrub intent must travel
    moved.scrub_on_release(false);               // ... and be revocable
  }
  EXPECT_EQ(pool.stats().scrubbed, 0u);
  auto ws = pool.acquire(64, 64, 16);
  EXPECT_EQ(ws->a.tile(0, 0)(0, 0), 9.0);
}

TEST(WorkspacePool, LeasedTileStorageIsAligned) {
  // Tile kernels run SIMD loads against leased workspaces, so every plane of
  // a fresh AND a recycled lease must sit on kMatrixAlignment boundaries.
  WorkspacePool pool(64u << 20);
  for (int round = 0; round < 2; ++round) {  // fresh, then recycled
    auto ws = pool.acquire(64, 32, 16);
    EXPECT_TRUE(la::is_matrix_aligned(ws->a.tile_data(0, 0)));
    EXPECT_TRUE(la::is_matrix_aligned(ws->tg.tile_data(0, 0)));
    EXPECT_TRUE(la::is_matrix_aligned(ws->te.tile_data(0, 0)));
  }
  EXPECT_EQ(pool.stats().reused, 1u);
}

}  // namespace
}  // namespace tqr::svc
