#include "svc/plan_cache.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "dag/tiled_qr_dag.hpp"

namespace tqr::svc {
namespace {

PlanKey key_for(la::index_t n, int tile, std::uint64_t platform_hash) {
  return PlanKey{n, n, tile, dag::Elimination::kTt, platform_hash};
}

class PlanCacheTest : public ::testing::Test {
 protected:
  PlanCacheTest()
      : platform_(sim::paper_platform_with_gpus(2)),
        hash_(platform_fingerprint(platform_)) {}

  PlanCache::Builder builder_for(la::index_t n, int tile) {
    return [this, n, tile]() -> PlanEntry {
      core::PlanConfig cfg;
      cfg.tile_size = tile;
      core::Plan plan(platform_, n / tile, n / tile, cfg);
      dag::TaskGraph graph =
          dag::build_tiled_qr_graph(n / tile, n / tile, cfg.elim);
      return PlanEntry{std::move(plan), std::move(graph)};
    };
  }

  sim::Platform platform_;
  std::uint64_t hash_;
};

TEST_F(PlanCacheTest, MissThenHitSharesOneEntry) {
  PlanCache cache(4);
  bool hit = true;
  auto first = cache.get_or_build(key_for(64, 16, hash_),
                                  builder_for(64, 16), &hit);
  EXPECT_FALSE(hit);
  auto second = cache.get_or_build(key_for(64, 16, hash_),
                                   builder_for(64, 16), &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(first.get(), second.get());
  const auto s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.size, 1u);
}

TEST_F(PlanCacheTest, DistinctKeysDistinctEntries) {
  PlanCache cache(8);
  auto a = cache.get_or_build(key_for(64, 16, hash_), builder_for(64, 16));
  auto b = cache.get_or_build(key_for(128, 16, hash_), builder_for(128, 16));
  auto c = cache.get_or_build(key_for(64, 32, hash_), builder_for(64, 32));
  EXPECT_NE(a.get(), b.get());
  EXPECT_NE(a.get(), c.get());
  EXPECT_EQ(cache.stats().size, 3u);
  EXPECT_EQ(a->graph.size(),
            dag::build_tiled_qr_graph(4, 4, dag::Elimination::kTt).size());
}

TEST_F(PlanCacheTest, LruEvictsColdestKey) {
  PlanCache cache(2);
  cache.get_or_build(key_for(64, 16, hash_), builder_for(64, 16));
  cache.get_or_build(key_for(128, 16, hash_), builder_for(128, 16));
  // Touch 64 so 128 is coldest, then insert a third key.
  cache.get_or_build(key_for(64, 16, hash_), builder_for(64, 16));
  cache.get_or_build(key_for(192, 16, hash_), builder_for(192, 16));
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().size, 2u);
  // 64 must still be resident (hit), 128 must rebuild (miss).
  bool hit = false;
  cache.get_or_build(key_for(64, 16, hash_), builder_for(64, 16), &hit);
  EXPECT_TRUE(hit);
  cache.get_or_build(key_for(128, 16, hash_), builder_for(128, 16), &hit);
  EXPECT_FALSE(hit);
}

TEST_F(PlanCacheTest, EvictionKeepsLeasedEntryAlive) {
  PlanCache cache(1);
  auto held = cache.get_or_build(key_for(64, 16, hash_), builder_for(64, 16));
  cache.get_or_build(key_for(128, 16, hash_), builder_for(128, 16));
  EXPECT_EQ(cache.stats().evictions, 1u);
  // The evicted entry is still usable through our shared_ptr.
  EXPECT_GT(held->graph.size(), 0u);
  EXPECT_EQ(held->plan.mt(), 4);
}

TEST_F(PlanCacheTest, PlatformHashSeparatesConfigs) {
  PlanCache cache(8);
  auto a = cache.get_or_build(key_for(64, 16, hash_), builder_for(64, 16));
  const auto other = platform_fingerprint(sim::paper_platform_with_gpus(0));
  ASSERT_NE(other, hash_);
  bool hit = true;
  cache.get_or_build(key_for(64, 16, other), builder_for(64, 16), &hit);
  EXPECT_FALSE(hit);
  EXPECT_EQ(cache.stats().size, 2u);
}

TEST_F(PlanCacheTest, ClearEmptiesButKeepsCounters) {
  PlanCache cache(4);
  cache.get_or_build(key_for(64, 16, hash_), builder_for(64, 16));
  cache.clear();
  EXPECT_EQ(cache.stats().size, 0u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST_F(PlanCacheTest, ZeroCapacityRejected) {
  EXPECT_THROW(PlanCache{0}, tqr::InvalidArgument);
}

TEST_F(PlanCacheTest, ConcurrentSameKeyConvergesToOneEntry) {
  PlanCache cache(4);
  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<const PlanEntry>> got(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      got[t] = cache.get_or_build(key_for(64, 16, hash_),
                                  builder_for(64, 16));
    });
  for (auto& t : threads) t.join();
  // Races may build more than once, but every caller must end up sharing
  // the single inserted entry.
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(got[0].get(), got[t].get());
  EXPECT_EQ(cache.stats().size, 1u);
}

}  // namespace
}  // namespace tqr::svc
