#include "svc/qr_service.hpp"

#include <gtest/gtest.h>

#include <future>
#include <vector>

#include "common/error.hpp"
#include "la/checks.hpp"
#include "la/matrix.hpp"

namespace tqr::svc {
namespace {

JobSpec spec_for(la::index_t rows, la::index_t cols, std::uint64_t seed,
                 bool residual = true) {
  JobSpec spec;
  spec.a = la::Matrix<double>::random(rows, cols, seed);
  spec.compute_residual = residual;
  return spec;
}

bool upper_triangular(const la::Matrix<double>& r) {
  for (la::index_t i = 0; i < r.rows(); ++i)
    for (la::index_t j = 0; j < i && j < r.cols(); ++j)
      if (r(i, j) != 0.0) return false;
  return true;
}

TEST(QrService, SingleJobFactorsCorrectly) {
  QrService service;
  auto result = service.submit(spec_for(96, 96, 11)).get();
  ASSERT_EQ(result.status, JobStatus::kOk) << result.error;
  EXPECT_EQ(result.rows, 96);
  EXPECT_EQ(result.cols, 96);
  EXPECT_EQ(result.r.rows(), 96);
  EXPECT_EQ(result.r.cols(), 96);
  EXPECT_TRUE(upper_triangular(result.r));
  EXPECT_GE(result.residual, 0.0);
  EXPECT_LT(result.residual, la::residual_tolerance<double>(96));
  EXPECT_GE(result.lane, 0);
  EXPECT_GT(result.exec_s, 0.0);
  EXPECT_GE(result.total_s, result.exec_s);
}

TEST(QrService, TallSkinnyAndNonTileAlignedShapes) {
  QrService service;
  // 100x60 is not a multiple of the default tile (16): exercises padding.
  auto tall = service.submit(spec_for(128, 64, 3)).get();
  auto ragged = service.submit(spec_for(100, 60, 4)).get();
  ASSERT_EQ(tall.status, JobStatus::kOk) << tall.error;
  ASSERT_EQ(ragged.status, JobStatus::kOk) << ragged.error;
  EXPECT_EQ(tall.r.rows(), 64);
  EXPECT_EQ(ragged.r.rows(), 60);
  EXPECT_LT(tall.residual, la::residual_tolerance<double>(128));
  EXPECT_LT(ragged.residual, la::residual_tolerance<double>(100));
}

TEST(QrService, RepeatedShapeHitsPlanCache) {
  QrService service;
  auto first = service.submit(spec_for(96, 96, 1, false)).get();
  service.drain();
  auto second = service.submit(spec_for(96, 96, 2, false)).get();
  ASSERT_EQ(first.status, JobStatus::kOk);
  ASSERT_EQ(second.status, JobStatus::kOk);
  EXPECT_FALSE(first.plan_cache_hit);
  EXPECT_TRUE(second.plan_cache_hit);
  const auto s = service.stats();
  EXPECT_GE(s.plan_cache.hits, 1u);
  EXPECT_EQ(s.jobs_completed, 2u);
}

TEST(QrService, WideMatrixFails) {
  QrService service;
  auto result = service.submit(spec_for(32, 64, 5, false)).get();
  EXPECT_EQ(result.status, JobStatus::kFailed);
  EXPECT_FALSE(result.error.empty());
  // A failed job must not poison the lane for the next one.
  auto ok = service.submit(spec_for(64, 64, 6, false)).get();
  EXPECT_EQ(ok.status, JobStatus::kOk) << ok.error;
}

TEST(QrService, ExpiredDeadlineSkipsFactorization) {
  ServiceConfig config;
  config.lanes = 1;
  QrService service(config);
  // Occupy the single lane with a large job, then enqueue one whose
  // queue deadline cannot survive the wait.
  auto big = service.submit(spec_for(256, 256, 7, true));
  JobSpec doomed = spec_for(64, 64, 8, false);
  doomed.queue_deadline_s = 1e-9;
  auto result = service.submit(std::move(doomed)).get();
  EXPECT_EQ(result.status, JobStatus::kExpired);
  EXPECT_EQ(result.r.rows(), 0);
  EXPECT_EQ(big.get().status, JobStatus::kOk);
  EXPECT_EQ(service.stats().jobs_expired, 1u);
}

TEST(QrService, RejectAdmissionResolvesFutureImmediately) {
  ServiceConfig config;
  config.lanes = 1;
  config.queue_capacity = 1;
  config.admission = Admission::kReject;
  QrService service(config);
  // Fill the lane and the queue, then overflow.
  std::vector<std::future<JobResult>> futures;
  for (int i = 0; i < 8; ++i)
    futures.push_back(service.submit(spec_for(192, 192, 20 + i, false)));
  int rejected = 0, ok = 0;
  for (auto& f : futures) {
    const auto r = f.get();
    (r.status == JobStatus::kRejected ? rejected : ok)++;
  }
  EXPECT_GT(rejected, 0);
  EXPECT_GT(ok, 0);
  EXPECT_EQ(service.stats().jobs_rejected,
            static_cast<std::uint64_t>(rejected));
}

TEST(QrService, DrainWaitsForAllAccepted) {
  QrService service;
  std::vector<std::future<JobResult>> futures;
  for (int i = 0; i < 6; ++i)
    futures.push_back(service.submit(spec_for(96, 96, 30 + i, false)));
  service.drain();
  const auto s = service.stats();
  EXPECT_EQ(s.jobs_completed, 6u);
  EXPECT_EQ(s.queue.depth, 0u);
  for (auto& f : futures)
    EXPECT_EQ(f.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
}

TEST(QrService, StatsTrackLatencyAndThroughput) {
  QrService service;
  for (int i = 0; i < 4; ++i)
    service.submit(spec_for(96, 96, 40 + i, false));
  service.drain();
  const auto s = service.stats();
  EXPECT_EQ(s.jobs_submitted, 4u);
  EXPECT_GT(s.p50_ms, 0.0);
  EXPECT_GE(s.p95_ms, s.p50_ms);
  EXPECT_GT(s.jobs_per_s, 0.0);
  EXPECT_GT(s.uptime_s, 0.0);
  EXPECT_EQ(s.lanes, service.config().lanes);
}

TEST(QrService, ColdConfigDisablesCacheAndReuse) {
  ServiceConfig config;
  config.plan_cache_enabled = false;
  config.workspace_max_bytes = 0;
  config.reuse_engines = false;
  QrService service(config);
  auto a = service.submit(spec_for(96, 96, 50, true)).get();
  auto b = service.submit(spec_for(96, 96, 51, true)).get();
  ASSERT_EQ(a.status, JobStatus::kOk) << a.error;
  ASSERT_EQ(b.status, JobStatus::kOk) << b.error;
  EXPECT_LT(a.residual, la::residual_tolerance<double>(96));
  EXPECT_FALSE(a.plan_cache_hit);
  EXPECT_FALSE(b.plan_cache_hit);
  const auto s = service.stats();
  EXPECT_EQ(s.plan_cache.hits, 0u);
  EXPECT_EQ(s.workspace.reused, 0u);
}

TEST(QrService, DestructorDrainsAcceptedJobs) {
  std::vector<std::future<JobResult>> futures;
  {
    QrService service;
    for (int i = 0; i < 4; ++i)
      futures.push_back(service.submit(spec_for(96, 96, 60 + i, false)));
  }  // ~QrService must complete every accepted job before returning
  for (auto& f : futures) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready);
    EXPECT_EQ(f.get().status, JobStatus::kOk);
  }
}

TEST(QrService, InvalidConfigRejected) {
  ServiceConfig bad_lanes;
  bad_lanes.lanes = 0;
  EXPECT_THROW(QrService{bad_lanes}, tqr::InvalidArgument);
  ServiceConfig bad_tile;
  bad_tile.default_tile = 0;
  EXPECT_THROW(QrService{bad_tile}, tqr::InvalidArgument);
}

TEST(QrService, TsEliminationJobsWork) {
  QrService service;
  JobSpec spec = spec_for(128, 128, 70, true);
  spec.elim = dag::Elimination::kTs;
  auto result = service.submit(std::move(spec)).get();
  ASSERT_EQ(result.status, JobStatus::kOk) << result.error;
  EXPECT_LT(result.residual, la::residual_tolerance<double>(128));
}

TEST(QrService, ExplicitTileSizeOverridesDefault) {
  QrService service;
  JobSpec spec = spec_for(96, 96, 80, true);
  spec.tile_size = 32;
  auto result = service.submit(std::move(spec)).get();
  ASSERT_EQ(result.status, JobStatus::kOk) << result.error;
  EXPECT_EQ(result.tile_size, 32);
  EXPECT_LT(result.residual, la::residual_tolerance<double>(96));
}

TEST(QrService, Fp32JobFactorsToFloatTolerance) {
  QrService service;
  JobSpec spec = spec_for(96, 96, 90, true);
  spec.precision = Precision::kFp32;
  spec.verify = Verify::kFull;
  auto result = service.submit(std::move(spec)).get();
  ASSERT_EQ(result.status, JobStatus::kOk) << result.error;
  EXPECT_EQ(result.precision, Precision::kFp32);
  EXPECT_TRUE(upper_triangular(result.r));
  // Residual sits at float scale: well under the float tolerance the full
  // verify tier enforced, but way above anything a double factorization
  // produces — proof the kernels genuinely ran in fp32.
  EXPECT_LT(result.residual, la::residual_tolerance<float>(96));
  EXPECT_GT(result.residual, 100.0 * la::residual_tolerance<double>(96));
}

TEST(QrService, Fp32AndFp64JobsAgreeOnR) {
  QrService service;
  JobSpec lo = spec_for(64, 64, 91, false);
  JobSpec hi;
  hi.a = lo.a;
  lo.precision = Precision::kFp32;
  auto rlo = service.submit(std::move(lo)).get();
  auto rhi = service.submit(std::move(hi)).get();
  ASSERT_EQ(rlo.status, JobStatus::kOk) << rlo.error;
  ASSERT_EQ(rhi.status, JobStatus::kOk) << rhi.error;
  // Same factorization up to float rounding (sign-fixed via |R| since
  // reflector signs may differ between precisions).
  double worst = 0, scale = 0;
  for (la::index_t j = 0; j < 64; ++j)
    for (la::index_t i = 0; i <= j; ++i) {
      worst = std::max(worst, std::abs(std::abs(rlo.r(i, j)) -
                                       std::abs(rhi.r(i, j))));
      scale = std::max(scale, std::abs(rhi.r(i, j)));
    }
  EXPECT_LT(worst / scale, la::residual_tolerance<float>(64, 5000.0));
}

TEST(QrService, PrecisionParsesAndPrints) {
  EXPECT_EQ(parse_precision("fp32"), Precision::kFp32);
  EXPECT_EQ(parse_precision("float"), Precision::kFp32);
  EXPECT_EQ(parse_precision("fp64"), Precision::kFp64);
  EXPECT_EQ(parse_precision("double"), Precision::kFp64);
  EXPECT_STREQ(to_string(Precision::kFp32), "fp32");
  EXPECT_STREQ(to_string(Precision::kFp64), "fp64");
  EXPECT_THROW(parse_precision("fp16"), InvalidArgument);
}

TEST(QrService, TraceRecordsConfiguredInnerBlock) {
  // Calibration/execution consistency: the ib the service was configured
  // with must be the ib the plan records and the one the executed factor
  // tasks are annotated with in the trace.
  ServiceConfig config;
  config.lanes = 1;
  config.collect_trace = true;
  config.inner_block = 8;
  QrService service(config);
  auto result = service.submit(spec_for(64, 64, 92, false)).get();
  ASSERT_EQ(result.status, JobStatus::kOk) << result.error;
  service.drain();
  const std::string json = service.trace_json();
  EXPECT_NE(json.find("\"ib\":8"), std::string::npos) << json.substr(0, 400);
}

}  // namespace
}  // namespace tqr::svc
