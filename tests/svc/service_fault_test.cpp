// Fault injection, bounded retry, exec deadlines, and cooperative
// cancellation through svc::QrService — the chaos half of the service tests.
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "la/matrix.hpp"
#include "svc/qr_service.hpp"

namespace tqr::svc {
namespace {

JobSpec spec_for(la::index_t rows, la::index_t cols, std::uint64_t seed) {
  JobSpec spec;
  spec.a = la::Matrix<double>::random(rows, cols, seed);
  return spec;
}

ServiceConfig one_lane() {
  ServiceConfig config;
  config.lanes = 1;
  return config;
}

TEST(FaultConfigParsing, ModesAndOps) {
  EXPECT_EQ(parse_fault_mode("none"), FaultConfig::Mode::kNone);
  EXPECT_EQ(parse_fault_mode("throw"), FaultConfig::Mode::kThrow);
  EXPECT_EQ(parse_fault_mode("stall"), FaultConfig::Mode::kStall);
  EXPECT_THROW(parse_fault_mode("explode"), InvalidArgument);
  EXPECT_EQ(parse_fault_op("geqrt"), static_cast<int>(dag::Op::kGeqrt));
  EXPECT_EQ(parse_fault_op("TSMQR"), static_cast<int>(dag::Op::kTsmqr));
  EXPECT_THROW(parse_fault_op("frobnicate"), InvalidArgument);
}

TEST(ServiceFault, InjectedThrowFailsWithoutRetryByDefault) {
  ServiceConfig config = one_lane();
  config.fault.mode = FaultConfig::Mode::kThrow;
  config.fault.task = 0;
  QrService service(config);
  const auto r = service.submit(spec_for(64, 64, 1)).get();
  EXPECT_EQ(r.status, JobStatus::kFailed);
  EXPECT_EQ(r.attempts, 1);  // max_attempts defaults to 1: no retry
  EXPECT_NE(r.error.find("injected fault"), std::string::npos) << r.error;
  const auto s = service.stats();
  EXPECT_EQ(s.jobs_failed, 1u);
  EXPECT_EQ(s.jobs_retried, 0u);
  EXPECT_GE(s.faults_injected, 1u);
}

TEST(ServiceFault, TransientFaultRetriesToSuccess) {
  ServiceConfig config = one_lane();
  config.fault.mode = FaultConfig::Mode::kThrow;
  config.fault.task = 0;
  config.fault.max_injections = 1;  // fails once, then clean
  QrService service(config);
  JobSpec spec = spec_for(64, 64, 2);
  spec.max_attempts = 2;
  spec.compute_residual = true;
  const auto r = service.submit(std::move(spec)).get();
  ASSERT_EQ(r.status, JobStatus::kOk) << r.error;
  EXPECT_EQ(r.attempts, 2);
  EXPECT_GE(r.residual, 0.0);
  const auto s = service.stats();
  EXPECT_EQ(s.jobs_completed, 1u);
  EXPECT_EQ(s.jobs_retried, 1u);
  EXPECT_EQ(s.faults_injected, 1u);
}

TEST(ServiceFault, PermanentFaultNeverRetries) {
  ServiceConfig config = one_lane();
  config.fault.mode = FaultConfig::Mode::kThrow;
  config.fault.task = 0;
  config.fault.permanent = true;
  QrService service(config);
  JobSpec spec = spec_for(64, 64, 3);
  spec.max_attempts = 3;
  const auto r = service.submit(std::move(spec)).get();
  EXPECT_EQ(r.status, JobStatus::kFailed);
  EXPECT_EQ(r.attempts, 1);  // permanent errors burn no retry budget
  EXPECT_EQ(service.stats().jobs_retried, 0u);
}

TEST(ServiceFault, ExhaustedRetriesFail) {
  ServiceConfig config = one_lane();
  config.fault.mode = FaultConfig::Mode::kThrow;
  config.fault.task = 0;  // every attempt refaults
  QrService service(config);
  JobSpec spec = spec_for(64, 64, 4);
  spec.max_attempts = 3;
  spec.retry_backoff_s = 0.001;
  const auto r = service.submit(std::move(spec)).get();
  EXPECT_EQ(r.status, JobStatus::kFailed);
  EXPECT_EQ(r.attempts, 3);
  const auto s = service.stats();
  EXPECT_EQ(s.jobs_retried, 2u);
  EXPECT_EQ(s.faults_injected, 3u);
}

TEST(ServiceFault, ExecDeadlineCancelsStalledJobAndLaneRecovers) {
  // The acceptance scenario: a stall fault pins the job well past its exec
  // deadline; the job must come back kCancelled in about deadline + one
  // task granularity (nowhere near the full stall), the lane must accept
  // the next job, and no workspace may leak.
  ServiceConfig config = one_lane();
  config.fault.mode = FaultConfig::Mode::kStall;
  config.fault.task = 0;
  config.fault.stall_s = 5.0;  // would hold the lane for 5 s uncancelled
  config.fault.max_injections = 1;
  QrService service(config);

  JobSpec spec = spec_for(64, 64, 5);
  spec.exec_deadline_s = 0.05;
  Timer wall;
  const auto r = service.submit(std::move(spec)).get();
  const double elapsed = wall.seconds();
  EXPECT_EQ(r.status, JobStatus::kCancelled);
  EXPECT_NE(r.error.find("deadline"), std::string::npos) << r.error;
  EXPECT_LT(elapsed, 2.0);  // cut the 5 s stall short at the deadline

  // Lane healthy, pool drained: the next job factors normally.
  const auto next = service.submit(spec_for(64, 64, 6)).get();
  EXPECT_EQ(next.status, JobStatus::kOk) << next.error;
  const auto s = service.stats();
  EXPECT_EQ(s.jobs_cancelled, 1u);
  EXPECT_EQ(s.jobs_completed, 1u);
  EXPECT_EQ(s.workspace.outstanding, 0u);
}

TEST(ServiceFault, DeadlineDuringRetryBackoffCancels) {
  ServiceConfig config = one_lane();
  config.fault.mode = FaultConfig::Mode::kThrow;
  config.fault.task = 0;
  QrService service(config);
  JobSpec spec = spec_for(64, 64, 7);
  spec.max_attempts = 5;
  spec.retry_backoff_s = 5.0;  // far longer than the deadline
  spec.exec_deadline_s = 0.05;
  Timer wall;
  const auto r = service.submit(std::move(spec)).get();
  EXPECT_EQ(r.status, JobStatus::kCancelled);
  EXPECT_NE(r.error.find("deadline"), std::string::npos) << r.error;
  EXPECT_LT(wall.seconds(), 2.0);  // backoff was interrupted
}

TEST(ServiceCancel, QueuedJobCancelsWithoutRunning) {
  ServiceConfig config = one_lane();
  config.fault.mode = FaultConfig::Mode::kStall;
  config.fault.task = 0;
  config.fault.stall_s = 0.3;  // keeps the single lane busy
  config.fault.max_injections = 1;
  QrService service(config);

  auto busy = service.submit(spec_for(64, 64, 8));
  std::uint64_t queued_id = 0;
  auto queued = service.submit(spec_for(64, 64, 9), &queued_id);
  ASSERT_NE(queued_id, 0u);
  EXPECT_TRUE(service.cancel(queued_id));
  EXPECT_FALSE(service.cancel(queued_id + 1000));  // unknown id

  const auto r = queued.get();
  EXPECT_EQ(r.status, JobStatus::kCancelled);
  EXPECT_EQ(r.id, queued_id);
  EXPECT_NE(r.error.find("cancelled by caller"), std::string::npos)
      << r.error;
  EXPECT_EQ(r.attempts, 0);  // never started executing

  EXPECT_EQ(busy.get().status, JobStatus::kOk);
  service.drain();
  // Completed jobs are forgotten: cancelling them reports false.
  EXPECT_FALSE(service.cancel(queued_id));
  EXPECT_EQ(service.stats().jobs_cancelled, 1u);
}

TEST(ServiceCancel, CancelAllSignalsEveryOutstandingJob) {
  ServiceConfig config = one_lane();
  config.fault.mode = FaultConfig::Mode::kStall;
  config.fault.stall_s = 0.05;
  QrService service(config);
  std::vector<std::future<JobResult>> futures;
  for (int i = 0; i < 4; ++i)
    futures.push_back(service.submit(spec_for(64, 64, 10 + i)));
  EXPECT_GE(service.cancel_all(), 1u);
  service.drain();
  int cancelled = 0;
  for (auto& f : futures) {
    const auto r = f.get();
    EXPECT_TRUE(r.status == JobStatus::kOk ||
                r.status == JobStatus::kCancelled)
        << to_string(r.status);
    if (r.status == JobStatus::kCancelled) ++cancelled;
  }
  EXPECT_GE(cancelled, 1);
  EXPECT_EQ(service.stats().workspace.outstanding, 0u);
}

TEST(ServiceCancel, ShutdownCancelsOutstandingJobsWhenConfigured) {
  std::vector<std::future<JobResult>> futures;
  {
    ServiceConfig config = one_lane();
    config.cancel_on_shutdown = true;
    config.fault.mode = FaultConfig::Mode::kStall;
    config.fault.stall_s = 0.05;  // per task: the backlog cannot finish fast
    QrService service(config);
    for (int i = 0; i < 6; ++i)
      futures.push_back(service.submit(spec_for(64, 64, 20 + i)));
  }  // destructor: cancel-all, drain, join
  int cancelled = 0;
  for (auto& f : futures) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready);
    const auto r = f.get();
    EXPECT_TRUE(r.status == JobStatus::kOk ||
                r.status == JobStatus::kCancelled)
        << to_string(r.status);
    if (r.status == JobStatus::kCancelled) ++cancelled;
  }
  EXPECT_GE(cancelled, 1);
}

TEST(ServiceReject, RejectedFutureCarriesIdAndTag) {
  // Admission kReject with the lane pinned by a stall: the queue fills and
  // the overflow job's future must resolve immediately with the id/tag the
  // caller can correlate on (pins that JobQueue::push leaves the rejected
  // job intact rather than consuming it).
  ServiceConfig config = one_lane();
  config.admission = Admission::kReject;
  config.queue_capacity = 1;
  config.fault.mode = FaultConfig::Mode::kStall;
  config.fault.task = 0;
  config.fault.stall_s = 0.3;
  config.fault.max_injections = 1;
  QrService service(config);

  auto busy = service.submit(spec_for(64, 64, 30));  // occupies the lane
  // Wait until the lane actually picked the job up (it holds a workspace
  // lease through the stall) so the next submit reliably stays queued.
  while (service.stats().workspace.outstanding == 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  std::uint64_t queued_id = 0;
  auto queued = service.submit(spec_for(64, 64, 31), &queued_id);

  JobSpec overflow = spec_for(64, 64, 32);
  overflow.tag = 0xBEEF;
  std::uint64_t overflow_id = 0;
  auto rejected = service.submit(std::move(overflow), &overflow_id);
  ASSERT_EQ(rejected.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  const auto r = rejected.get();
  EXPECT_EQ(r.status, JobStatus::kRejected);
  EXPECT_EQ(r.id, overflow_id);
  EXPECT_EQ(r.tag, 0xBEEFu);
  EXPECT_EQ(r.rows, 64);
  EXPECT_EQ(r.cols, 64);
  EXPECT_NE(r.error.find("queue full"), std::string::npos) << r.error;
  service.drain();
}

TEST(NodeFaultSchedule, ParseKindsAndEpisodeWindows) {
  EXPECT_EQ(parse_node_fault_kind("none"), NodeFaultConfig::Kind::kNone);
  EXPECT_EQ(parse_node_fault_kind("crash"), NodeFaultConfig::Kind::kCrash);
  EXPECT_EQ(parse_node_fault_kind("brownout"),
            NodeFaultConfig::Kind::kBrownout);
  EXPECT_EQ(parse_node_fault_kind("reject-storm"),
            NodeFaultConfig::Kind::kRejectStorm);
  EXPECT_EQ(parse_node_fault_kind("flaky-link"),
            NodeFaultConfig::Kind::kFlakyLink);
  EXPECT_THROW(parse_node_fault_kind("meltdown"), InvalidArgument);

  // Periodic episode: [1, 3) every 10s.
  NodeFaultConfig cfg;
  cfg.kind = NodeFaultConfig::Kind::kBrownout;
  cfg.at_s = 1.0;
  cfg.duration_s = 2.0;
  cfg.period_s = 10.0;
  cfg.stall_factor = 8.0;
  NodeFaultInjector inj(cfg);
  EXPECT_FALSE(inj.active(0.5));
  EXPECT_TRUE(inj.active(1.5));
  EXPECT_FALSE(inj.active(3.5));
  EXPECT_TRUE(inj.active(11.5));  // repeats each period
  EXPECT_FALSE(inj.active(13.5));
  EXPECT_DOUBLE_EQ(inj.stall_factor(1.5), 8.0);
  EXPECT_DOUBLE_EQ(inj.stall_factor(0.5), 1.0);
  EXPECT_FALSE(inj.crashed(1.5));  // brownouts degrade, never kill

  // duration 0 = the fault never clears once it starts.
  NodeFaultConfig crash;
  crash.kind = NodeFaultConfig::Kind::kCrash;
  crash.at_s = 0.25;
  NodeFaultInjector ci(crash);
  EXPECT_FALSE(ci.crashed(0.1));
  EXPECT_TRUE(ci.crashed(0.3));
  EXPECT_TRUE(ci.crashed(1e9));
  EXPECT_TRUE(ci.rejecting(0.3));  // a crashed node also rejects

  // Invalid schedules are rejected up front.
  NodeFaultConfig bad = cfg;
  bad.period_s = 1.0;  // shorter than the episode itself
  EXPECT_THROW(NodeFaultInjector{bad}, InvalidArgument);
}

TEST(NodeFaultSchedule, FlakyLinkRollsAreSeededDeterministic) {
  NodeFaultConfig cfg;
  cfg.kind = NodeFaultConfig::Kind::kFlakyLink;
  cfg.drop_probability = 0.5;
  cfg.delay_s = 0.002;
  cfg.seed = 7;
  NodeFaultInjector a(cfg), b(cfg);
  std::vector<bool> ra, rb;
  int drops = 0;
  for (int i = 0; i < 64; ++i) {
    ra.push_back(a.drop_ship(1.0));
    rb.push_back(b.drop_ship(1.0));
    drops += ra.back() ? 1 : 0;
  }
  EXPECT_EQ(ra, rb);  // same seed => same chaos, reproducible runs
  EXPECT_GT(drops, 0);
  EXPECT_LT(drops, 64);
  EXPECT_EQ(a.injected(), static_cast<std::uint64_t>(drops));
  EXPECT_DOUBLE_EQ(a.ship_delay_s(1.0), 0.002);
  // Outside the episode the link behaves: no drops, no delay.
  NodeFaultConfig later = cfg;
  later.at_s = 100.0;
  NodeFaultInjector off(later);
  for (int i = 0; i < 64; ++i) EXPECT_FALSE(off.drop_ship(1.0));
  EXPECT_DOUBLE_EQ(off.ship_delay_s(1.0), 0.0);
}

TEST(NodeFault, CrashedNodeBouncesSubmissionsAtTheDoor) {
  ServiceConfig config = one_lane();
  config.node_fault.kind = NodeFaultConfig::Kind::kCrash;
  config.node_fault.at_s = 0;
  QrService service(config);
  JobSpec spec = spec_for(64, 64, 50);
  spec.tag = 0xC4A5;
  auto f = service.submit(std::move(spec));
  ASSERT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  const auto r = f.get();
  EXPECT_EQ(r.status, JobStatus::kRejected);
  EXPECT_EQ(r.tag, 0xC4A5u);
  EXPECT_NE(r.error.find("node down"), std::string::npos) << r.error;
  const auto s = service.stats();
  EXPECT_TRUE(s.node_down);
  EXPECT_EQ(s.node_rejects, 1u);
  EXPECT_EQ(s.jobs_rejected, 1u);
  EXPECT_EQ(s.jobs_completed, 0u);
  service.drain();
}

TEST(NodeFault, MidRunCrashFailsInFlightJobsPermanently) {
  ServiceConfig config = one_lane();
  // The stall holds the first task past the crash time; retries are armed
  // to prove a crash failure is permanent (no retry on a dead node).
  config.fault.mode = FaultConfig::Mode::kStall;
  config.fault.stall_s = 0.4;
  config.fault.max_injections = 1;
  config.node_fault.kind = NodeFaultConfig::Kind::kCrash;
  config.node_fault.at_s = 0.1;
  QrService service(config);
  JobSpec spec = spec_for(64, 64, 51);
  spec.max_attempts = 3;
  const auto r = service.submit(std::move(spec)).get();
  EXPECT_EQ(r.status, JobStatus::kFailed);
  EXPECT_EQ(r.attempts, 1);  // permanent: the retry loop must not re-run it
  EXPECT_NE(r.error.find("node down: injected crash"), std::string::npos)
      << r.error;
  const auto s = service.stats();
  EXPECT_TRUE(s.node_down);
  EXPECT_EQ(s.jobs_failed, 1u);
  EXPECT_EQ(s.jobs_retried, 0u);
  EXPECT_GE(s.node_faults_injected, 1u);
  service.drain();
}

TEST(NodeFault, RejectStormWindowClosesAndServiceRecovers) {
  ServiceConfig config = one_lane();
  config.node_fault.kind = NodeFaultConfig::Kind::kRejectStorm;
  config.node_fault.at_s = 0;
  config.node_fault.duration_s = 1.0;
  QrService service(config);
  const auto bounced = service.submit(spec_for(64, 64, 52)).get();
  EXPECT_EQ(bounced.status, JobStatus::kRejected);
  EXPECT_NE(bounced.error.find("reject storm"), std::string::npos)
      << bounced.error;
  EXPECT_FALSE(service.stats().node_down);  // rejecting, not crashed
  std::this_thread::sleep_for(std::chrono::milliseconds(1100));
  const auto r = service.submit(spec_for(64, 64, 53)).get();
  EXPECT_EQ(r.status, JobStatus::kOk) << r.error;
  const auto s = service.stats();
  EXPECT_EQ(s.node_rejects, 1u);
  EXPECT_EQ(s.jobs_completed, 1u);
  service.drain();
}

TEST(NodeFault, BrownoutStretchesExecutionButJobsStillComplete) {
  ServiceConfig clean = one_lane();
  ServiceConfig browned = one_lane();
  browned.node_fault.kind = NodeFaultConfig::Kind::kBrownout;
  browned.node_fault.at_s = 0;
  browned.node_fault.stall_factor = 20.0;
  QrService fast(clean), slow(browned);
  const auto rf = fast.submit(spec_for(128, 128, 54)).get();
  const auto rs = slow.submit(spec_for(128, 128, 54)).get();
  ASSERT_EQ(rf.status, JobStatus::kOk);
  ASSERT_EQ(rs.status, JobStatus::kOk) << rs.error;
  // Every task is stretched to ~20x its measured time, so the browned run
  // is far slower than the clean one (2x leaves sanitizer-sized noise room)
  // and the factors still verify identical.
  EXPECT_GT(rs.exec_s, rf.exec_s * 2);
  EXPECT_GE(slow.stats().node_faults_injected, 4u);  // per-task injections
  EXPECT_EQ(fast.stats().node_faults_injected, 0u);
  fast.drain();
  slow.drain();
}

}  // namespace
}  // namespace tqr::svc
