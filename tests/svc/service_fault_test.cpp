// Fault injection, bounded retry, exec deadlines, and cooperative
// cancellation through svc::QrService — the chaos half of the service tests.
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "la/matrix.hpp"
#include "svc/qr_service.hpp"

namespace tqr::svc {
namespace {

JobSpec spec_for(la::index_t rows, la::index_t cols, std::uint64_t seed) {
  JobSpec spec;
  spec.a = la::Matrix<double>::random(rows, cols, seed);
  return spec;
}

ServiceConfig one_lane() {
  ServiceConfig config;
  config.lanes = 1;
  return config;
}

TEST(FaultConfigParsing, ModesAndOps) {
  EXPECT_EQ(parse_fault_mode("none"), FaultConfig::Mode::kNone);
  EXPECT_EQ(parse_fault_mode("throw"), FaultConfig::Mode::kThrow);
  EXPECT_EQ(parse_fault_mode("stall"), FaultConfig::Mode::kStall);
  EXPECT_THROW(parse_fault_mode("explode"), InvalidArgument);
  EXPECT_EQ(parse_fault_op("geqrt"), static_cast<int>(dag::Op::kGeqrt));
  EXPECT_EQ(parse_fault_op("TSMQR"), static_cast<int>(dag::Op::kTsmqr));
  EXPECT_THROW(parse_fault_op("frobnicate"), InvalidArgument);
}

TEST(ServiceFault, InjectedThrowFailsWithoutRetryByDefault) {
  ServiceConfig config = one_lane();
  config.fault.mode = FaultConfig::Mode::kThrow;
  config.fault.task = 0;
  QrService service(config);
  const auto r = service.submit(spec_for(64, 64, 1)).get();
  EXPECT_EQ(r.status, JobStatus::kFailed);
  EXPECT_EQ(r.attempts, 1);  // max_attempts defaults to 1: no retry
  EXPECT_NE(r.error.find("injected fault"), std::string::npos) << r.error;
  const auto s = service.stats();
  EXPECT_EQ(s.jobs_failed, 1u);
  EXPECT_EQ(s.jobs_retried, 0u);
  EXPECT_GE(s.faults_injected, 1u);
}

TEST(ServiceFault, TransientFaultRetriesToSuccess) {
  ServiceConfig config = one_lane();
  config.fault.mode = FaultConfig::Mode::kThrow;
  config.fault.task = 0;
  config.fault.max_injections = 1;  // fails once, then clean
  QrService service(config);
  JobSpec spec = spec_for(64, 64, 2);
  spec.max_attempts = 2;
  spec.compute_residual = true;
  const auto r = service.submit(std::move(spec)).get();
  ASSERT_EQ(r.status, JobStatus::kOk) << r.error;
  EXPECT_EQ(r.attempts, 2);
  EXPECT_GE(r.residual, 0.0);
  const auto s = service.stats();
  EXPECT_EQ(s.jobs_completed, 1u);
  EXPECT_EQ(s.jobs_retried, 1u);
  EXPECT_EQ(s.faults_injected, 1u);
}

TEST(ServiceFault, PermanentFaultNeverRetries) {
  ServiceConfig config = one_lane();
  config.fault.mode = FaultConfig::Mode::kThrow;
  config.fault.task = 0;
  config.fault.permanent = true;
  QrService service(config);
  JobSpec spec = spec_for(64, 64, 3);
  spec.max_attempts = 3;
  const auto r = service.submit(std::move(spec)).get();
  EXPECT_EQ(r.status, JobStatus::kFailed);
  EXPECT_EQ(r.attempts, 1);  // permanent errors burn no retry budget
  EXPECT_EQ(service.stats().jobs_retried, 0u);
}

TEST(ServiceFault, ExhaustedRetriesFail) {
  ServiceConfig config = one_lane();
  config.fault.mode = FaultConfig::Mode::kThrow;
  config.fault.task = 0;  // every attempt refaults
  QrService service(config);
  JobSpec spec = spec_for(64, 64, 4);
  spec.max_attempts = 3;
  spec.retry_backoff_s = 0.001;
  const auto r = service.submit(std::move(spec)).get();
  EXPECT_EQ(r.status, JobStatus::kFailed);
  EXPECT_EQ(r.attempts, 3);
  const auto s = service.stats();
  EXPECT_EQ(s.jobs_retried, 2u);
  EXPECT_EQ(s.faults_injected, 3u);
}

TEST(ServiceFault, ExecDeadlineCancelsStalledJobAndLaneRecovers) {
  // The acceptance scenario: a stall fault pins the job well past its exec
  // deadline; the job must come back kCancelled in about deadline + one
  // task granularity (nowhere near the full stall), the lane must accept
  // the next job, and no workspace may leak.
  ServiceConfig config = one_lane();
  config.fault.mode = FaultConfig::Mode::kStall;
  config.fault.task = 0;
  config.fault.stall_s = 5.0;  // would hold the lane for 5 s uncancelled
  config.fault.max_injections = 1;
  QrService service(config);

  JobSpec spec = spec_for(64, 64, 5);
  spec.exec_deadline_s = 0.05;
  Timer wall;
  const auto r = service.submit(std::move(spec)).get();
  const double elapsed = wall.seconds();
  EXPECT_EQ(r.status, JobStatus::kCancelled);
  EXPECT_NE(r.error.find("deadline"), std::string::npos) << r.error;
  EXPECT_LT(elapsed, 2.0);  // cut the 5 s stall short at the deadline

  // Lane healthy, pool drained: the next job factors normally.
  const auto next = service.submit(spec_for(64, 64, 6)).get();
  EXPECT_EQ(next.status, JobStatus::kOk) << next.error;
  const auto s = service.stats();
  EXPECT_EQ(s.jobs_cancelled, 1u);
  EXPECT_EQ(s.jobs_completed, 1u);
  EXPECT_EQ(s.workspace.outstanding, 0u);
}

TEST(ServiceFault, DeadlineDuringRetryBackoffCancels) {
  ServiceConfig config = one_lane();
  config.fault.mode = FaultConfig::Mode::kThrow;
  config.fault.task = 0;
  QrService service(config);
  JobSpec spec = spec_for(64, 64, 7);
  spec.max_attempts = 5;
  spec.retry_backoff_s = 5.0;  // far longer than the deadline
  spec.exec_deadline_s = 0.05;
  Timer wall;
  const auto r = service.submit(std::move(spec)).get();
  EXPECT_EQ(r.status, JobStatus::kCancelled);
  EXPECT_NE(r.error.find("deadline"), std::string::npos) << r.error;
  EXPECT_LT(wall.seconds(), 2.0);  // backoff was interrupted
}

TEST(ServiceCancel, QueuedJobCancelsWithoutRunning) {
  ServiceConfig config = one_lane();
  config.fault.mode = FaultConfig::Mode::kStall;
  config.fault.task = 0;
  config.fault.stall_s = 0.3;  // keeps the single lane busy
  config.fault.max_injections = 1;
  QrService service(config);

  auto busy = service.submit(spec_for(64, 64, 8));
  std::uint64_t queued_id = 0;
  auto queued = service.submit(spec_for(64, 64, 9), &queued_id);
  ASSERT_NE(queued_id, 0u);
  EXPECT_TRUE(service.cancel(queued_id));
  EXPECT_FALSE(service.cancel(queued_id + 1000));  // unknown id

  const auto r = queued.get();
  EXPECT_EQ(r.status, JobStatus::kCancelled);
  EXPECT_EQ(r.id, queued_id);
  EXPECT_NE(r.error.find("cancelled by caller"), std::string::npos)
      << r.error;
  EXPECT_EQ(r.attempts, 0);  // never started executing

  EXPECT_EQ(busy.get().status, JobStatus::kOk);
  service.drain();
  // Completed jobs are forgotten: cancelling them reports false.
  EXPECT_FALSE(service.cancel(queued_id));
  EXPECT_EQ(service.stats().jobs_cancelled, 1u);
}

TEST(ServiceCancel, CancelAllSignalsEveryOutstandingJob) {
  ServiceConfig config = one_lane();
  config.fault.mode = FaultConfig::Mode::kStall;
  config.fault.stall_s = 0.05;
  QrService service(config);
  std::vector<std::future<JobResult>> futures;
  for (int i = 0; i < 4; ++i)
    futures.push_back(service.submit(spec_for(64, 64, 10 + i)));
  EXPECT_GE(service.cancel_all(), 1u);
  service.drain();
  int cancelled = 0;
  for (auto& f : futures) {
    const auto r = f.get();
    EXPECT_TRUE(r.status == JobStatus::kOk ||
                r.status == JobStatus::kCancelled)
        << to_string(r.status);
    if (r.status == JobStatus::kCancelled) ++cancelled;
  }
  EXPECT_GE(cancelled, 1);
  EXPECT_EQ(service.stats().workspace.outstanding, 0u);
}

TEST(ServiceCancel, ShutdownCancelsOutstandingJobsWhenConfigured) {
  std::vector<std::future<JobResult>> futures;
  {
    ServiceConfig config = one_lane();
    config.cancel_on_shutdown = true;
    config.fault.mode = FaultConfig::Mode::kStall;
    config.fault.stall_s = 0.05;  // per task: the backlog cannot finish fast
    QrService service(config);
    for (int i = 0; i < 6; ++i)
      futures.push_back(service.submit(spec_for(64, 64, 20 + i)));
  }  // destructor: cancel-all, drain, join
  int cancelled = 0;
  for (auto& f : futures) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready);
    const auto r = f.get();
    EXPECT_TRUE(r.status == JobStatus::kOk ||
                r.status == JobStatus::kCancelled)
        << to_string(r.status);
    if (r.status == JobStatus::kCancelled) ++cancelled;
  }
  EXPECT_GE(cancelled, 1);
}

TEST(ServiceReject, RejectedFutureCarriesIdAndTag) {
  // Admission kReject with the lane pinned by a stall: the queue fills and
  // the overflow job's future must resolve immediately with the id/tag the
  // caller can correlate on (pins that JobQueue::push leaves the rejected
  // job intact rather than consuming it).
  ServiceConfig config = one_lane();
  config.admission = Admission::kReject;
  config.queue_capacity = 1;
  config.fault.mode = FaultConfig::Mode::kStall;
  config.fault.task = 0;
  config.fault.stall_s = 0.3;
  config.fault.max_injections = 1;
  QrService service(config);

  auto busy = service.submit(spec_for(64, 64, 30));  // occupies the lane
  // Wait until the lane actually picked the job up (it holds a workspace
  // lease through the stall) so the next submit reliably stays queued.
  while (service.stats().workspace.outstanding == 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  std::uint64_t queued_id = 0;
  auto queued = service.submit(spec_for(64, 64, 31), &queued_id);

  JobSpec overflow = spec_for(64, 64, 32);
  overflow.tag = 0xBEEF;
  std::uint64_t overflow_id = 0;
  auto rejected = service.submit(std::move(overflow), &overflow_id);
  ASSERT_EQ(rejected.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  const auto r = rejected.get();
  EXPECT_EQ(r.status, JobStatus::kRejected);
  EXPECT_EQ(r.id, overflow_id);
  EXPECT_EQ(r.tag, 0xBEEFu);
  EXPECT_EQ(r.rows, 64);
  EXPECT_EQ(r.cols, 64);
  EXPECT_NE(r.error.find("queue full"), std::string::npos) << r.error;
  service.drain();
}

}  // namespace
}  // namespace tqr::svc
