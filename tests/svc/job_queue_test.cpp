#include "svc/job_queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/error.hpp"

namespace tqr::svc {
namespace {

PendingJob make_job(std::uint64_t id) {
  PendingJob job;
  job.id = id;
  return job;
}

TEST(JobQueue, PushPopRoundTrip) {
  JobQueue q(4, Admission::kBlock);
  EXPECT_EQ(q.push(make_job(7)), PushResult::kAccepted);
  auto job = q.pop();
  ASSERT_TRUE(job.has_value());
  EXPECT_EQ(job->id, 7u);
}

TEST(JobQueue, RejectPolicyBouncesWhenFull) {
  JobQueue q(2, Admission::kReject);
  EXPECT_EQ(q.push(make_job(1)), PushResult::kAccepted);
  EXPECT_EQ(q.push(make_job(2)), PushResult::kAccepted);
  EXPECT_EQ(q.push(make_job(3)), PushResult::kRejected);
  EXPECT_EQ(q.stats().rejected, 1u);
  // Popping frees a slot; admission resumes.
  EXPECT_TRUE(q.pop().has_value());
  EXPECT_EQ(q.push(make_job(4)), PushResult::kAccepted);
}

TEST(JobQueue, BlockPolicyWaitsForRoom) {
  JobQueue q(1, Admission::kBlock);
  EXPECT_EQ(q.push(make_job(1)), PushResult::kAccepted);
  std::atomic<bool> second_admitted{false};
  std::thread producer([&] {
    EXPECT_EQ(q.push(make_job(2)), PushResult::kAccepted);
    second_admitted.store(true);
  });
  // The producer must be parked until we pop.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(second_admitted.load());
  EXPECT_TRUE(q.pop().has_value());
  producer.join();
  EXPECT_TRUE(second_admitted.load());
  EXPECT_GE(q.stats().blocked_pushes, 1u);
}

TEST(JobQueue, CloseDrainsThenStops) {
  JobQueue q(4, Admission::kBlock);
  q.push(make_job(1));
  q.push(make_job(2));
  q.close();
  EXPECT_EQ(q.push(make_job(3)), PushResult::kClosed);
  EXPECT_TRUE(q.pop().has_value());
  EXPECT_TRUE(q.pop().has_value());
  EXPECT_FALSE(q.pop().has_value());  // drained: no block after close
}

TEST(JobQueue, CloseUnblocksBlockedProducer) {
  JobQueue q(1, Admission::kBlock);
  EXPECT_EQ(q.push(make_job(1)), PushResult::kAccepted);
  std::thread producer([&] {
    EXPECT_EQ(q.push(make_job(2)), PushResult::kClosed);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.close();
  producer.join();
}

TEST(JobQueue, CloseUnblocksBlockedConsumer) {
  JobQueue q(1, Admission::kBlock);
  std::thread consumer([&] { EXPECT_FALSE(q.pop().has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.close();
  consumer.join();
}

TEST(JobQueue, HighWaterTracksPeakDepth) {
  JobQueue q(8, Admission::kBlock);
  for (int i = 0; i < 5; ++i) q.push(make_job(i));
  for (int i = 0; i < 5; ++i) q.pop();
  const auto s = q.stats();
  EXPECT_EQ(s.high_water, 5u);
  EXPECT_EQ(s.depth, 0u);
  EXPECT_EQ(s.accepted, 5u);
}

TEST(JobQueue, RejectedPushLeavesJobIntact) {
  // push() takes the job by rvalue but must only consume it on kAccepted:
  // the service's rejection path reads id/spec back out of the same object
  // to build the kRejected result, and resolves its promise.
  JobQueue q(1, Admission::kReject);
  EXPECT_EQ(q.push(make_job(1)), PushResult::kAccepted);

  PendingJob job = make_job(42);
  job.spec.tag = 0xABCD;
  job.spec.tile_size = 24;
  auto future = job.promise.get_future();
  EXPECT_EQ(q.push(std::move(job)), PushResult::kRejected);
  EXPECT_EQ(job.id, 42u);
  EXPECT_EQ(job.spec.tag, 0xABCDu);
  EXPECT_EQ(job.spec.tile_size, 24);
  // The promise still belongs to the caller-side object and is usable.
  JobResult r;
  r.id = job.id;
  r.status = JobStatus::kRejected;
  job.promise.set_value(std::move(r));
  EXPECT_EQ(future.get().id, 42u);
}

TEST(JobQueue, ClosedPushLeavesJobIntact) {
  JobQueue q(4, Admission::kBlock);
  q.close();
  PendingJob job = make_job(7);
  job.spec.tag = 99;
  auto future = job.promise.get_future();
  EXPECT_EQ(q.push(std::move(job)), PushResult::kClosed);
  EXPECT_EQ(job.id, 7u);
  EXPECT_EQ(job.spec.tag, 99u);
  JobResult r;
  r.tag = job.spec.tag;
  job.promise.set_value(std::move(r));
  EXPECT_EQ(future.get().tag, 99u);
}

TEST(JobQueue, ZeroCapacityRejected) {
  EXPECT_THROW(JobQueue(0, Admission::kBlock), tqr::InvalidArgument);
}

TEST(JobQueue, ManyProducersManyConsumers) {
  JobQueue q(4, Admission::kBlock);
  constexpr int kProducers = 4, kPerProducer = 32;
  std::atomic<int> popped{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p)
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i)
        EXPECT_EQ(q.push(make_job(p * 100 + i)), PushResult::kAccepted);
    });
  std::vector<std::thread> consumers;
  for (int c = 0; c < 2; ++c)
    consumers.emplace_back([&] {
      while (q.pop().has_value()) popped.fetch_add(1);
    });
  for (auto& t : threads) t.join();
  q.close();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(popped.load(), kProducers * kPerProducer);
}

TEST(JobQueue, ClosedRejectsCountedSeparatelyFromRejected) {
  JobQueue q(1, Admission::kReject);
  EXPECT_EQ(q.push(make_job(1)), PushResult::kAccepted);
  EXPECT_EQ(q.push(make_job(2)), PushResult::kRejected);  // full
  q.close();
  EXPECT_EQ(q.push(make_job(3)), PushResult::kClosed);
  EXPECT_EQ(q.push(make_job(4)), PushResult::kClosed);
  const auto s = q.stats();
  EXPECT_EQ(s.accepted, 1u);
  EXPECT_EQ(s.rejected, 1u);
  EXPECT_EQ(s.closed_rejects, 2u);
  // The accounting invariant: every push lands in exactly one bucket.
  EXPECT_EQ(s.accepted + s.rejected + s.closed_rejects, 4u);
}

TEST(JobQueue, BlockedProducerWokenByCloseCountsAsClosedReject) {
  // The shutdown-accounting bug this PR fixes: a kBlock producer parked on
  // a full queue and then woken by close() used to be indistinguishable
  // from a load-shed rejection in the stats.
  JobQueue q(1, Admission::kBlock);
  EXPECT_EQ(q.push(make_job(1)), PushResult::kAccepted);
  std::thread producer([&] {
    EXPECT_EQ(q.push(make_job(2)), PushResult::kClosed);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.close();
  producer.join();
  const auto s = q.stats();
  EXPECT_EQ(s.accepted, 1u);
  EXPECT_EQ(s.rejected, 0u);  // never a load-shed: admission is kBlock
  EXPECT_EQ(s.closed_rejects, 1u);
  EXPECT_GE(s.blocked_pushes, 1u);
  EXPECT_EQ(s.accepted + s.rejected + s.closed_rejects, 2u);
}

// Concurrent producers race a close() while consumers drain: whatever the
// interleaving, the three admission buckets must sum to the push attempts
// and every accepted job must be popped exactly once (close() drains).
TEST(JobQueue, PushAccountingInvariantSurvivesCloseStorm) {
  constexpr int kProducers = 4, kPerProducer = 200;
  JobQueue q(2, Admission::kReject);
  std::atomic<int> attempts{0}, popped{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p)
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        q.push(make_job(p * kPerProducer + i));
        attempts.fetch_add(1, std::memory_order_relaxed);
      }
    });
  std::vector<std::thread> consumers;
  for (int c = 0; c < 2; ++c)
    consumers.emplace_back([&] {
      while (q.pop().has_value())
        popped.fetch_add(1, std::memory_order_relaxed);
    });
  // Close mid-storm so pushes land in all three buckets.
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  q.close();
  for (auto& t : threads) t.join();
  for (auto& t : consumers) t.join();
  const auto s = q.stats();
  EXPECT_EQ(s.accepted + s.rejected + s.closed_rejects,
            static_cast<std::uint64_t>(attempts.load()));
  EXPECT_EQ(static_cast<std::uint64_t>(popped.load()), s.accepted);
  EXPECT_EQ(s.depth, 0u);
}

TEST(JobQueue, CloseWhileProducersParkedOnFullQueue) {
  // Several kBlock producers parked on a capacity-1 queue, then close():
  // all must return kClosed promptly (no lost wakeup on the futex path)
  // and the single accepted job must still drain.
  JobQueue q(1, Admission::kBlock);
  EXPECT_EQ(q.push(make_job(0)), PushResult::kAccepted);
  constexpr int kBlocked = 3;
  std::atomic<int> closed_results{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kBlocked; ++p)
    producers.emplace_back([&, p] {
      if (q.push(make_job(1 + p)) == PushResult::kClosed)
        closed_results.fetch_add(1);
    });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  for (auto& t : producers) t.join();
  EXPECT_EQ(closed_results.load(), kBlocked);
  EXPECT_TRUE(q.pop().has_value());
  EXPECT_FALSE(q.pop().has_value());
  const auto s = q.stats();
  EXPECT_EQ(s.accepted, 1u);
  EXPECT_EQ(s.closed_rejects, static_cast<std::uint64_t>(kBlocked));
  EXPECT_EQ(s.accepted + s.rejected + s.closed_rejects, 1u + kBlocked);
}

}  // namespace
}  // namespace tqr::svc
