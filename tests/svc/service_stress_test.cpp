// Concurrency stress for QrService: many submitter threads, mixed shapes,
// every factorization checked for numerical correctness, and the plan cache
// required to absorb the shape repetition. This is the test the TSan gate in
// scripts/check.sh leans on hardest.
#include <gtest/gtest.h>

#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "la/checks.hpp"
#include "la/matrix.hpp"
#include "svc/qr_service.hpp"

namespace tqr::svc {
namespace {

struct Shape {
  la::index_t rows, cols;
};

// Four shapes cycling across jobs: square, tall-skinny, larger square, and a
// non-tile-aligned one (padding path). Repetition is what the plan cache
// must exploit.
constexpr Shape kShapes[] = {{96, 96}, {128, 64}, {160, 160}, {100, 52}};
constexpr int kSubmitters = 4;
constexpr int kJobsPerSubmitter = 16;  // 64 jobs total

TEST(ServiceStress, MixedShapeJobsFromManyThreads) {
  ServiceConfig config;
  config.lanes = 3;
  config.queue_capacity = 16;  // small enough that submitters block
  QrService service(config);

  std::mutex mutex;
  std::vector<std::future<JobResult>> futures;
  std::vector<std::thread> submitters;
  for (int s = 0; s < kSubmitters; ++s)
    submitters.emplace_back([&, s] {
      for (int i = 0; i < kJobsPerSubmitter; ++i) {
        const Shape shape = kShapes[(s + i) % std::size(kShapes)];
        JobSpec spec;
        spec.a = la::Matrix<double>::random(shape.rows, shape.cols,
                                            1000 + s * 100 + i);
        spec.compute_residual = true;
        spec.tag = static_cast<std::uint64_t>(s * 100 + i);
        auto future = service.submit(std::move(spec));
        std::lock_guard<std::mutex> lock(mutex);
        futures.push_back(std::move(future));
      }
    });
  for (auto& t : submitters) t.join();
  ASSERT_EQ(futures.size(),
            static_cast<std::size_t>(kSubmitters * kJobsPerSubmitter));

  int cache_hits = 0;
  for (auto& f : futures) {
    const JobResult r = f.get();
    ASSERT_EQ(r.status, JobStatus::kOk)
        << "job tag " << r.tag << ": " << r.error;
    EXPECT_GE(r.residual, 0.0);
    EXPECT_LT(r.residual, la::residual_tolerance<double>(r.rows))
        << "job tag " << r.tag << " shape " << r.rows << "x" << r.cols;
    cache_hits += r.plan_cache_hit ? 1 : 0;
  }

  const auto stats = service.stats();
  EXPECT_EQ(stats.jobs_completed,
            static_cast<std::uint64_t>(kSubmitters * kJobsPerSubmitter));
  EXPECT_EQ(stats.jobs_failed, 0u);
  // Only the first job of each distinct shape can miss; concurrent first
  // encounters may race a few extra builds, but with 4 shapes and 64 jobs
  // the cache must serve the overwhelming majority from memory.
  EXPECT_GE(stats.plan_cache.hits, 48u);
  EXPECT_GE(cache_hits, 48);
  EXPECT_GT(stats.plan_cache.hit_rate(), 0.75);
  // Backpressure engaged: the small queue forced at least one submitter to
  // wait, and the high-water mark respected capacity.
  EXPECT_LE(stats.queue.high_water, config.queue_capacity);
  // Workspace recycling carried the steady state: far fewer allocations
  // than jobs.
  EXPECT_LT(stats.workspace.allocated, 64u);
  EXPECT_GT(stats.workspace.reused, 0u);
}

TEST(ServiceStress, SubmittersRaceDrainAndStats) {
  QrService service;
  std::vector<std::thread> threads;
  std::vector<std::future<JobResult>> futures(16);
  for (int s = 0; s < 4; ++s)
    threads.emplace_back([&, s] {
      for (int i = 0; i < 4; ++i) {
        JobSpec spec;
        spec.a = la::Matrix<double>::random(96, 96, 2000 + s * 10 + i);
        futures[s * 4 + i] = service.submit(std::move(spec));
      }
      // Hammer stats() concurrently with execution.
      for (int i = 0; i < 50; ++i) (void)service.stats();
    });
  for (auto& t : threads) t.join();
  service.drain();
  for (auto& f : futures) EXPECT_EQ(f.get().status, JobStatus::kOk);
  EXPECT_EQ(service.stats().jobs_completed, 16u);
}

}  // namespace
}  // namespace tqr::svc
